//! The uniform backend interface over the workspace's three solvers.

use std::time::Instant;

use brel_bdd::{BddError, CacheStats, GcStats};
use brel_core::{
    BrelConfig, BrelSolver, CostFunction, Explorer, QuickSolver, SearchStrategy, StepOutcome,
};
use brel_gyocro::{GyocroConfig, GyocroSolver};
use brel_relation::{BooleanRelation, MultiOutputFunction, RelationError};

use crate::control::JobControl;
use crate::fault::{FaultInjection, FaultKind, InjectedPanic};
use crate::job::{BackendKind, CostSpec, JobBudget};
use crate::reuse::ReuseStats;

/// What a backend hands back before uniform scoring: the compatible
/// multiple-output function it found and how much of the search space it
/// visited to find it.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// The compatible solution.
    pub function: MultiOutputFunction,
    /// Backend-specific exploration count (subrelations for BREL, passes
    /// for gyocro, 1 for the quick solver).
    pub explored: usize,
    /// Number of splits performed (BREL only; 0 elsewhere).
    pub splits: usize,
    /// High-water mark of pending subproblems (BREL only; 0 elsewhere).
    pub frontier_peak: usize,
}

/// A uniform interface over Boolean-relation solvers, so the engine can
/// race heterogeneous backends on the same job.
pub trait SolverBackend {
    /// Short stable name used in reports.
    fn name(&self) -> &'static str;

    /// Solves the relation.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::NotWellDefined`] if the relation has no
    /// compatible function.
    fn run(&self, relation: &BooleanRelation) -> Result<BackendRun, RelationError>;
}

impl SolverBackend for QuickSolver {
    fn name(&self) -> &'static str {
        BackendKind::Quick.name()
    }

    fn run(&self, relation: &BooleanRelation) -> Result<BackendRun, RelationError> {
        let function = QuickSolver::solve(self, relation)?;
        Ok(BackendRun {
            function,
            explored: 1,
            splits: 0,
            frontier_peak: 0,
        })
    }
}

impl SolverBackend for GyocroSolver {
    fn name(&self) -> &'static str {
        BackendKind::Gyocro.name()
    }

    fn run(&self, relation: &BooleanRelation) -> Result<BackendRun, RelationError> {
        let solution = GyocroSolver::solve(self, relation)?;
        Ok(BackendRun {
            function: solution.function,
            explored: solution.passes,
            splits: 0,
            frontier_peak: 0,
        })
    }
}

impl SolverBackend for BrelSolver {
    fn name(&self) -> &'static str {
        BackendKind::Brel.name()
    }

    fn run(&self, relation: &BooleanRelation) -> Result<BackendRun, RelationError> {
        let solution = BrelSolver::solve(self, relation)?;
        Ok(BackendRun {
            function: solution.function,
            explored: solution.stats.explored,
            splits: solution.stats.splits,
            frontier_peak: solution.stats.frontier_peak,
        })
    }
}

/// Instantiates a backend configured with the job's cost, budget and
/// search strategy.
pub fn instantiate(
    kind: BackendKind,
    cost: CostSpec,
    budget: &JobBudget,
    strategy: SearchStrategy,
) -> Box<dyn SolverBackend> {
    match kind {
        BackendKind::Quick => Box::new(QuickSolver::new()),
        BackendKind::Gyocro => Box::new(GyocroSolver::new(GyocroConfig {
            max_passes: budget.gyocro_max_passes,
            ..GyocroConfig::default()
        })),
        BackendKind::Brel => Box::new(BrelSolver::new(
            BrelConfig::default()
                .with_cost(cost.to_cost_fn())
                .with_strategy(strategy)
                .with_max_explored(budget.max_explored)
                .with_fifo_capacity(budget.fifo_capacity),
        )),
    }
}

/// The uniform per-backend result: every field except the wall time is a
/// pure function of the job spec, which is what makes batch output
/// reproducible across worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolutionReport {
    /// Which backend produced the solution.
    pub backend: BackendKind,
    /// Cost of the solution under the job's [`CostSpec`].
    pub cost: u64,
    /// Number of cubes of the ISOP covers of the outputs.
    pub cubes: usize,
    /// Number of literals of the ISOP covers of the outputs.
    pub literals: usize,
    /// Backend-specific exploration count.
    pub explored: usize,
    /// Number of splits performed (BREL only; 0 elsewhere).
    pub splits: usize,
    /// High-water mark of pending subproblems in the search frontier (BREL
    /// only; 0 elsewhere). Deterministic, like `explored`.
    pub frontier_peak: usize,
    /// The search strategy that drove the exploration; `None` for backends
    /// without a frontier (quick, gyocro).
    pub strategy: Option<SearchStrategy>,
    /// BDD-kernel cache counters attributed to this backend run: the delta
    /// of the relation's manager counters across the solve. Deterministic
    /// (a pure function of the operation sequence), so it participates in
    /// reproducible serializations, unlike `wall_micros`.
    pub cache: CacheStats,
    /// BDD-kernel lifecycle counters attributed to this run (collections,
    /// reclaimed nodes, reorder passes as deltas; live/peak nodes and the
    /// variable-order hash as gauges). Deterministic, like `cache`.
    pub gc: GcStats,
    /// How this attempt was produced: warm-session rehydration and/or a
    /// cross-job cache hit. Scheduling-dependent, so excluded from
    /// deterministic serializations like `wall_micros` (see
    /// [`crate::report`]).
    pub reuse: ReuseStats,
    /// `true` when the attempt is a degraded result: a step-deadline
    /// truncation's incumbent or a degradation-ladder rung run after the
    /// primary attempt faulted (see [`crate::fault`]). Deterministic.
    pub degraded: bool,
    /// Wall-clock solve time in microseconds. Excluded from deterministic
    /// serializations (see [`crate::report`]).
    pub wall_micros: u64,
}

/// The fault-policy context of one backend execution: the wall-clock
/// deadline, the deterministic step deadline, and the fault injections
/// aimed at this job. Empty for plain [`execute`] calls.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ExecContext<'a> {
    /// Wall-clock deadline, checked cooperatively between exploration
    /// steps (the kernel governor checks it inside `mk` as well).
    pub deadline: Option<Instant>,
    /// The policy's `deadline_ms`, carried into the structured error.
    pub deadline_ms: u64,
    /// Deterministic truncation: stop after this many expansions and keep
    /// the incumbent as a degraded result.
    pub step_deadline: Option<usize>,
    /// Fault injections targeting this job (BREL attempts only).
    pub injections: &'a [&'a FaultInjection],
    /// The job's control surface (cooperative cancellation + incumbent
    /// streaming), when an interactive caller installed one. `None` on
    /// the batch path — and an inert control behaves identically to
    /// `None`, which is what keeps serial replays byte-identical.
    pub control: Option<&'a JobControl>,
}

/// Runs one backend on one (already rehydrated) relation and scores the
/// solution under the job's cost function.
///
/// # Errors
///
/// Returns [`RelationError::NotWellDefined`] if the relation has no
/// compatible function.
pub fn execute(
    kind: BackendKind,
    cost: CostSpec,
    budget: &JobBudget,
    strategy: SearchStrategy,
    relation: &BooleanRelation,
) -> Result<SolutionReport, RelationError> {
    execute_with(
        kind,
        cost,
        budget,
        strategy,
        relation,
        &ExecContext::default(),
    )
    .map(|(report, _)| report)
}

/// [`execute`] under a fault-policy context. The second return value is the
/// deterministic truncation description when a step deadline expired (the
/// report's `degraded` flag is set accordingly).
///
/// # Errors
///
/// Returns [`RelationError::NotWellDefined`] if the relation has no
/// compatible function, and [`RelationError::ResourceExhausted`] when the
/// kernel governor or the wall-clock deadline aborted the attempt.
/// Injected panics and quota trips unwind — callers isolate attempts with
/// [`crate::fault::catch_fault`].
pub(crate) fn execute_with(
    kind: BackendKind,
    cost: CostSpec,
    budget: &JobBudget,
    strategy: SearchStrategy,
    relation: &BooleanRelation,
    ctx: &ExecContext<'_>,
) -> Result<(SolutionReport, Option<String>), RelationError> {
    // Portfolio backends share one rehydrated manager; re-base the peak
    // gauge so each report's `gc.peak_live_nodes` is this backend's own
    // high-water mark, not the construction peak or a predecessor's.
    // (Re-basing only moves the peak gauge, so taking the combined
    // snapshot after it sees the same counter baselines the two separate
    // queries used to.)
    relation.space().mgr().reset_peak_live_nodes();
    let before = relation.space().mgr().stats_snapshot();
    let start = Instant::now();
    let (run, truncated) = {
        let _span = brel_obs::span(brel_obs::Category::Engine, "backend");
        if kind == BackendKind::Brel {
            run_brel_guarded(cost, budget, strategy, relation, ctx)?
        } else {
            let backend = instantiate(kind, cost, budget, strategy);
            (backend.run(relation)?, None)
        }
    };
    let wall_us = brel_obs::wall_micros(start);
    // Snapshot before the compatibility check so the verification's own
    // kernel traffic never leaks into the attributed counters.
    let after = relation.space().mgr().stats_snapshot();
    assert!(
        relation.is_compatible(&run.function),
        "backend {} returned an incompatible function",
        kind.name()
    );
    let report = SolutionReport {
        backend: kind,
        cost: cost.to_cost_fn().cost(&run.function),
        cubes: run.function.num_cubes(),
        literals: run.function.num_literals(),
        explored: run.explored,
        splits: run.splits,
        frontier_peak: run.frontier_peak,
        strategy: (kind == BackendKind::Brel).then_some(strategy),
        cache: after.cache.delta_since(&before.cache),
        gc: after.gc.delta_since(&before.gc),
        reuse: ReuseStats::default(),
        degraded: truncated.is_some(),
        wall_micros: wall_us,
    };
    Ok((report, truncated))
}

/// The BREL attempt as a fault-aware exploration loop: between steps it
/// fires due injections, checks the wall-clock deadline, and catches the
/// kernel governor's cooperative unwind ([`Explorer::step_guarded`]).
/// Behaviourally identical to `BrelSolver::solve` when the context is
/// empty, so clean runs stay byte-identical to the unguarded path.
fn run_brel_guarded(
    cost: CostSpec,
    budget: &JobBudget,
    strategy: SearchStrategy,
    relation: &BooleanRelation,
    ctx: &ExecContext<'_>,
) -> Result<(BackendRun, Option<String>), RelationError> {
    let config = BrelConfig::default()
        .with_cost(cost.to_cost_fn())
        .with_strategy(strategy)
        .with_max_explored(budget.max_explored)
        .with_fifo_capacity(budget.fifo_capacity)
        .with_step_deadline(ctx.step_deadline);
    let mut explorer = Explorer::new(config, relation)?;
    if let Some(control) = ctx.control {
        // The quick-solver seed is the first incumbent: a valid, verified
        // compatible solution available before any exploration step.
        control.notify_incumbent(explorer.best_cost(), explorer.explored());
    }
    let mut truncated: Option<String> = None;
    loop {
        for injection in ctx.injections {
            if injection.at_expansion() != explorer.explored() {
                continue;
            }
            match injection.kind() {
                FaultKind::Panic => {
                    if injection.fire() {
                        std::panic::panic_any(InjectedPanic {
                            job: injection.job().to_string(),
                            at_expansion: injection.at_expansion(),
                        });
                    }
                }
                FaultKind::QuotaTrip => {
                    if injection.fire() {
                        // The same typed payload a real governor abort
                        // carries, so classification and quarantine follow
                        // the organic path. Deterministic values only.
                        std::panic::panic_any(BddError::QuotaExceeded {
                            live_nodes: 0,
                            max_live_nodes: 0,
                        });
                    }
                }
                FaultKind::StepDeadline => {
                    if injection.fire() {
                        explorer.config_mut().step_deadline = Some(explorer.explored());
                        truncated = Some(format!(
                            "injected step deadline at expansion {} of job {}",
                            injection.at_expansion(),
                            injection.job()
                        ));
                    }
                }
            }
        }
        if let Some(deadline) = ctx.deadline {
            if Instant::now() >= deadline {
                return Err(RelationError::ResourceExhausted(
                    BddError::DeadlineExceeded {
                        elapsed_ms: ctx.deadline_ms,
                        deadline_ms: ctx.deadline_ms,
                    },
                ));
            }
        }
        if ctx.control.is_some_and(JobControl::is_cancelled) {
            // Cooperative cancellation: truncate like a step deadline —
            // stop at the step boundary, keep the incumbent, classify the
            // job as degraded rather than failed.
            truncated.get_or_insert_with(|| {
                format!("cancelled after {} expansions", explorer.explored())
            });
            break;
        }
        match explorer.step_guarded()? {
            StepOutcome::Explored { improved, .. } => {
                if improved {
                    if let Some(control) = ctx.control {
                        control.notify_incumbent(explorer.best_cost(), explorer.explored());
                    }
                }
            }
            StepOutcome::Exhausted | StepOutcome::BudgetExhausted => break,
            StepOutcome::DeadlineExpired => {
                if truncated.is_none() {
                    truncated = Some(format!(
                        "step deadline expired after {} expansions",
                        explorer.explored()
                    ));
                }
                break;
            }
        }
    }
    let solution = explorer.into_solution();
    Ok((
        BackendRun {
            function: solution.function,
            explored: solution.stats.explored,
            splits: solution.stats.splits,
            frontier_peak: solution.stats.frontier_peak,
        },
        truncated,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use brel_relation::RelationSpace;

    fn fig10() -> (RelationSpace, BooleanRelation) {
        let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
        let r = BooleanRelation::from_table(&space, "00:{00,11}\n01:{10}\n10:{01,10}\n11:{11}")
            .unwrap();
        (space, r)
    }

    #[test]
    fn every_backend_produces_a_scored_report() {
        let (_space, r) = fig10();
        for kind in BackendKind::all() {
            let report = execute(
                kind,
                CostSpec::SumBddSize,
                &JobBudget::default(),
                SearchStrategy::Fifo,
                &r,
            )
            .expect("solvable");
            assert_eq!(report.backend, kind);
            assert!(report.cost > 0);
            assert!(report.literals >= report.cubes);
            assert!(report.explored >= 1);
            if kind == BackendKind::Brel {
                assert_eq!(report.strategy, Some(SearchStrategy::Fifo));
                assert!(report.frontier_peak >= 1);
            } else {
                assert_eq!(report.strategy, None);
                assert_eq!(report.splits, 0);
                assert_eq!(report.frontier_peak, 0);
            }
        }
    }

    #[test]
    fn brel_beats_quick_on_the_local_minimum_relation() {
        // Section 9.1: BREL (unbounded here via a generous budget) escapes
        // the quick solver's local minimum on the Fig. 10 relation.
        let (_space, r) = fig10();
        let budget = JobBudget {
            max_explored: None,
            fifo_capacity: None,
            ..JobBudget::default()
        };
        let quick = execute(
            BackendKind::Quick,
            CostSpec::SumBddSize,
            &budget,
            SearchStrategy::Fifo,
            &r,
        )
        .unwrap();
        for strategy in SearchStrategy::all() {
            let brel = execute(
                BackendKind::Brel,
                CostSpec::SumBddSize,
                &budget,
                strategy,
                &r,
            )
            .unwrap();
            assert!(brel.cost < quick.cost);
            assert_eq!(brel.strategy, Some(strategy));
        }
    }

    #[test]
    fn ill_defined_relations_error_on_every_backend() {
        let space = RelationSpace::new(1, 1);
        let r = BooleanRelation::from_table(&space, "1 : {1}").unwrap();
        for kind in BackendKind::all() {
            assert!(execute(
                kind,
                CostSpec::default(),
                &JobBudget::default(),
                SearchStrategy::Fifo,
                &r
            )
            .is_err());
        }
    }

    #[test]
    fn trait_objects_report_their_names() {
        for kind in BackendKind::all() {
            let backend = instantiate(
                kind,
                CostSpec::default(),
                &JobBudget::default(),
                SearchStrategy::Fifo,
            );
            assert_eq!(backend.name(), kind.name());
        }
    }
}
