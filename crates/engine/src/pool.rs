//! A std-only worker pool that solves batches of jobs in parallel.
//!
//! Workers share a single job queue behind a mutex (jobs are coarse enough
//! that queue contention is negligible) and stream finished [`JobReport`]s
//! back over an mpsc channel. Because each job is a pure function of its
//! spec — every worker rehydrates the relation into its own [`WarmSession`],
//! and a successful warm reset is observationally cold — the collected
//! batch, sorted by job id, is byte-identical (modulo wall clocks and the
//! scheduling-dependent reuse flags) no matter how many workers ran it or
//! how the scheduler interleaved them.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use crate::fault::{FaultInjection, FaultPlan};
use crate::job::{BackendKind, JobSpec};
use crate::portfolio::{run_job_faulted, run_job_wide_with, JobReport};
use crate::reuse::{BatchReuse, ReuseState, WarmSession};
use crate::wide::WideOptions;

/// Engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of worker threads. Zero is treated as one.
    pub num_workers: usize,
    /// When set, batches run in *wide* mode: jobs are processed one at a
    /// time and the worker pool parallelizes frontier expansion inside each
    /// BREL solve instead of across jobs (see [`crate::wide`]). Use it when
    /// one hard relation would otherwise serialize the batch.
    pub wide: Option<WideOptions>,
    /// Cross-job reuse (the default): workers keep warm BDD sessions
    /// across jobs and share the solved-subrelation cache. Turning it off
    /// restores the pre-redesign cold-manager-per-job behaviour; the
    /// deterministic output is identical either way (see
    /// [`crate::reuse`]), only wall clocks and the [`BatchReuse`] counters
    /// move.
    pub reuse: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_workers: thread::available_parallelism().map_or(1, |n| n.get()),
            wide: None,
            reuse: true,
        }
    }
}

/// The result of one batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One report per submitted job, sorted by job id.
    pub jobs: Vec<JobReport>,
    /// Number of workers that actually ran (after clamping).
    pub num_workers: usize,
    /// Wall-clock time of the whole batch in microseconds.
    pub wall_micros: u64,
    /// Warm-vs-cold session counts and solved-subrelation cache traffic
    /// for the whole batch. Scheduling-dependent (which worker lands which
    /// job decides who resets warm), so it is serialized only alongside
    /// timings — never in the deterministic output.
    pub reuse: BatchReuse,
}

impl BatchReport {
    /// Number of jobs whose portfolio produced at least one solution.
    pub fn num_solved(&self) -> usize {
        self.jobs.iter().filter(|j| j.winner.is_some()).count()
    }

    /// Sum of the winning attempts' costs: the batch's determinism
    /// fingerprint. A solver or kernel change may move wall times, but if
    /// this number moves for the default configuration, results changed.
    pub fn total_winner_cost(&self) -> u64 {
        self.jobs
            .iter()
            .filter_map(|j| j.winning().map(|w| w.cost))
            .sum()
    }

    /// How many jobs each backend won, in the deterministic
    /// [`BackendKind::all`] order. Backends that won nothing are included
    /// with a zero count.
    pub fn wins_by_backend(&self) -> Vec<(BackendKind, usize)> {
        BackendKind::all()
            .into_iter()
            .map(|kind| {
                let wins = self
                    .jobs
                    .iter()
                    .filter(|j| j.winning().is_some_and(|w| w.backend == kind))
                    .count();
                (kind, wins)
            })
            .collect()
    }
}

/// The parallel batch-solving engine.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineConfig,
    /// Deterministic fault-injection plan for chaos runs; `None` (the
    /// default) injects nothing and adds no overhead beyond a slice check.
    plan: Option<Arc<FaultPlan>>,
}

impl Engine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine { config, plan: None }
    }

    /// Creates an engine with a fixed worker count.
    pub fn with_workers(num_workers: usize) -> Self {
        Engine::new(EngineConfig {
            num_workers,
            ..EngineConfig::default()
        })
    }

    /// Switches the engine into wide mode (parallel frontier expansion
    /// inside each BREL solve instead of job-level parallelism).
    pub fn with_wide(mut self, options: WideOptions) -> Self {
        self.config.wide = Some(options);
        self
    }

    /// Turns cross-job reuse (warm sessions + the solved-subrelation
    /// cache) on or off. Off restores the pre-redesign
    /// cold-manager-per-job behaviour; the deterministic output is
    /// identical either way.
    pub fn with_reuse(mut self, reuse: bool) -> Self {
        self.config.reuse = reuse;
        self
    }

    /// Arms a deterministic fault-injection plan: each injection fires
    /// exactly once, at the Nth BREL expansion of its target job, in both
    /// narrow and wide mode. Jobs the plan does not target are untouched —
    /// their deterministic output is byte-identical to an uninjected run.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.plan = Some(plan);
        self
    }

    /// The configuration of this engine.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Solves every job of the batch and returns the reports sorted by job
    /// id. The output (modulo wall-clock fields) does not depend on the
    /// worker count.
    pub fn solve_batch(&self, jobs: &[JobSpec]) -> BatchReport {
        if let Some(options) = self.config.wide {
            return self.solve_batch_wide(jobs, options);
        }
        let start = Instant::now();
        // Never spin up more workers than jobs; never fewer than one.
        let num_workers = self.config.num_workers.clamp(1, jobs.len().max(1));
        let queue: Mutex<VecDeque<(usize, &JobSpec)>> =
            Mutex::new(jobs.iter().enumerate().collect());
        let reuse_state = ReuseState::new(self.config.reuse);
        let session_counts = Mutex::new((0u64, 0u64, 0u64));
        let (tx, rx) = mpsc::channel::<JobReport>();
        let mut reports: Vec<JobReport> = thread::scope(|scope| {
            for worker in 0..num_workers {
                let tx = tx.clone();
                let queue = &queue;
                let reuse_state = &reuse_state;
                let session_counts = &session_counts;
                let keep_warm = self.config.reuse;
                let plan = self.plan.as_deref();
                scope.spawn(move || {
                    let _track = brel_obs::enabled(brel_obs::Category::Engine)
                        .then(|| brel_obs::set_track(&format!("pool-worker-{worker}")));
                    // Each worker owns one session that stays warm across
                    // every job it lands (cold mode never reuses it).
                    let mut warm = if keep_warm {
                        WarmSession::new()
                    } else {
                        WarmSession::cold()
                    };
                    loop {
                        // Take the lock only to pop; the solve runs unlocked.
                        let next = queue.lock().expect("job queue poisoned").pop_front();
                        match next {
                            Some((id, job)) => {
                                let _job_span = brel_obs::span!(
                                    brel_obs::Category::Engine,
                                    "job",
                                    "job_id" => id,
                                );
                                let injections: Vec<&FaultInjection> =
                                    plan.map_or_else(Vec::new, |p| p.for_job(&job.name));
                                // The receiver outlives the scope; a send can
                                // only fail if the collector stopped early.
                                let _ = tx.send(run_job_faulted(
                                    id,
                                    job,
                                    &mut warm,
                                    reuse_state,
                                    &injections,
                                ));
                            }
                            None => break,
                        }
                    }
                    let (reuses, colds, quarantined) = warm.counts();
                    let mut totals = session_counts.lock().expect("counts poisoned");
                    totals.0 += reuses;
                    totals.1 += colds;
                    totals.2 += quarantined;
                });
            }
            // Drop the original sender so the channel closes once every
            // worker finishes, then drain it from this thread.
            drop(tx);
            rx.iter().collect()
        });
        reports.sort_by_key(|r| r.job_id);
        let (warm_reuses, cold_builds, quarantines) =
            *session_counts.lock().expect("counts poisoned");
        let (subrel_cache_hits, subrel_cache_misses) = reuse_state.counts();
        BatchReport {
            jobs: reports,
            num_workers,
            wall_micros: brel_obs::wall_micros(start),
            reuse: BatchReuse {
                warm_reuses,
                cold_builds,
                subrel_cache_hits,
                subrel_cache_misses,
                quarantines,
            },
        }
    }

    /// Wide mode: jobs run one at a time and the pool parallelizes the
    /// frontier of each BREL solve instead. Reports are produced directly
    /// in job-id order; output (modulo wall-clock fields) is independent of
    /// the worker count, like the job-parallel path.
    fn solve_batch_wide(&self, jobs: &[JobSpec], options: WideOptions) -> BatchReport {
        let start = Instant::now();
        let num_workers = self.config.num_workers.max(1);
        // The coordinator and the per-worker expansion sessions persist
        // across jobs (unless reuse is off), so wide rounds stop paying a
        // fresh manager per expansion. The subrelation cache does not apply
        // here: wide expansions are intermediate, not finished portfolios.
        let make = || {
            if self.config.reuse {
                WarmSession::new()
            } else {
                WarmSession::cold()
            }
        };
        let mut coordinator = make();
        let mut sessions: Vec<WarmSession> = (0..num_workers).map(|_| make()).collect();
        let reports: Vec<JobReport> = jobs
            .iter()
            .enumerate()
            .map(|(id, job)| {
                let _job_span = brel_obs::span!(
                    brel_obs::Category::Engine,
                    "job",
                    "job_id" => id,
                );
                let injections: Vec<&FaultInjection> = self
                    .plan
                    .as_deref()
                    .map_or_else(Vec::new, |p| p.for_job(&job.name));
                run_job_wide_with(
                    id,
                    job,
                    options,
                    &mut coordinator,
                    &mut sessions,
                    None,
                    &injections,
                )
            })
            .collect();
        let mut warm_reuses = 0;
        let mut cold_builds = 0;
        let mut quarantines = 0;
        for session in sessions.iter().chain(std::iter::once(&coordinator)) {
            let (reuses, colds, quarantined) = session.counts();
            warm_reuses += reuses;
            cold_builds += colds;
            quarantines += quarantined;
        }
        BatchReport {
            jobs: reports,
            num_workers,
            wall_micros: brel_obs::wall_micros(start),
            reuse: BatchReuse {
                warm_reuses,
                cold_builds,
                subrel_cache_hits: 0,
                subrel_cache_misses: 0,
                quarantines,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{CostSpec, RelationSpec};
    use brel_relation::{BooleanRelation, RelationSpace};

    fn job(name: &str, table: &str, inputs: usize, outputs: usize) -> JobSpec {
        let space = RelationSpace::new(inputs, outputs);
        let r = BooleanRelation::from_table(&space, table).unwrap();
        JobSpec::portfolio(name, RelationSpec::from_relation(&r).unwrap())
    }

    fn sample_batch() -> Vec<JobSpec> {
        vec![
            job("fig1", "00:{00}\n01:{00}\n10:{00,11}\n11:{10,11}", 2, 2),
            job("fig10", "00:{00,11}\n01:{10}\n10:{01,10}\n11:{11}", 2, 2),
            job("broken", "1 : {1}", 1, 1),
            job("fig5", "00:{01,10}\n01:{11}\n10:{11}\n11:{01,10}", 2, 2)
                .with_cost(CostSpec::LiteralCount),
        ]
    }

    #[test]
    fn reports_come_back_in_job_id_order() {
        let batch = sample_batch();
        let report = Engine::with_workers(3).solve_batch(&batch);
        assert_eq!(report.jobs.len(), batch.len());
        for (i, j) in report.jobs.iter().enumerate() {
            assert_eq!(j.job_id, i);
            assert_eq!(j.name, batch[i].name);
        }
        assert_eq!(report.num_solved(), 3);
        let total_wins: usize = report.wins_by_backend().iter().map(|(_, w)| w).sum();
        assert_eq!(total_wins, 3);
    }

    #[test]
    fn worker_count_does_not_change_the_results() {
        let batch = sample_batch();
        let one = Engine::with_workers(1).solve_batch(&batch);
        let many = Engine::with_workers(8).solve_batch(&batch);
        assert_eq!(one.jobs.len(), many.jobs.len());
        for (a, b) in one.jobs.iter().zip(&many.jobs) {
            // Wall-clock fields and the scheduling-dependent reuse flags
            // aside, the reports are structurally equal.
            let mask = |j: &JobReport| {
                let mut j = j.clone();
                for attempt in &mut j.attempts {
                    attempt.wall_micros = 0;
                    attempt.reuse = Default::default();
                }
                j
            };
            assert_eq!(mask(a), mask(b));
        }
    }

    #[test]
    fn disabling_reuse_does_not_change_the_results() {
        let batch = sample_batch();
        let warm = Engine::with_workers(2).solve_batch(&batch);
        let cold = Engine::with_workers(2)
            .with_reuse(false)
            .solve_batch(&batch);
        assert_eq!(warm.total_winner_cost(), cold.total_winner_cost());
        // Cold mode never resets a session warm and never consults the
        // subrelation cache.
        assert_eq!(cold.reuse.warm_reuses, 0);
        assert_eq!(
            cold.reuse.subrel_cache_hits + cold.reuse.subrel_cache_misses,
            0
        );
        // Every job rehydrates cold exactly once (even the ill-defined
        // one: rehydration succeeds, solving is what fails).
        assert_eq!(cold.reuse.cold_builds as usize, batch.len());
        for (a, b) in warm.jobs.iter().zip(&cold.jobs) {
            let mask = |j: &JobReport| {
                let mut j = j.clone();
                for attempt in &mut j.attempts {
                    attempt.wall_micros = 0;
                    attempt.reuse = Default::default();
                }
                j
            };
            assert_eq!(mask(a), mask(b));
        }
    }

    #[test]
    fn chaos_batches_terminate_with_structured_outcomes() {
        use crate::fault::{FaultPlan, JobOutcome};
        // Drop the ill-defined job: chaos runs assert that every *solvable*
        // job still yields a winner.
        let batch: Vec<JobSpec> = sample_batch()
            .into_iter()
            .filter(|j| j.name != "broken")
            .collect();
        let names: Vec<&str> = batch.iter().map(|j| j.name.as_str()).collect();
        let mask = |j: &JobReport| {
            let mut j = j.clone();
            for attempt in &mut j.attempts {
                attempt.wall_micros = 0;
                attempt.reuse = Default::default();
            }
            j
        };
        let mut runs = Vec::new();
        for workers in [1usize, 2, 8] {
            // Injections are armed-once, so each run arms a fresh plan.
            let plan = Arc::new(FaultPlan::seeded(9, &names));
            assert_eq!(plan.injections().len(), 3);
            let report = Engine::with_workers(workers)
                .with_fault_plan(plan.clone())
                .solve_batch(&batch);
            assert_eq!(plan.num_fired(), 3, "every injection must fire");
            let non_solved = report
                .jobs
                .iter()
                .filter(|j| j.outcome != Some(JobOutcome::Solved))
                .count();
            assert_eq!(non_solved, 3, "exactly the injected jobs degrade");
            assert!(
                report.jobs.iter().all(|j| j.winner.is_some()),
                "every solvable job still returns a row"
            );
            runs.push(report.jobs.iter().map(mask).collect::<Vec<_>>());
        }
        assert_eq!(runs[0], runs[1], "1 vs 2 workers");
        assert_eq!(runs[0], runs[2], "1 vs 8 workers");
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let batch = sample_batch();
        let report = Engine::with_workers(0).solve_batch(&batch);
        assert_eq!(report.num_workers, 1);
        assert_eq!(report.jobs.len(), batch.len());
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = Engine::default().solve_batch(&[]);
        assert!(report.jobs.is_empty());
        assert_eq!(report.num_solved(), 0);
    }
}
