//! Cross-job reuse: warm per-worker BDD sessions and the solved-subrelation
//! cache.
//!
//! Since the kernel redesign the BDD manager is `Send` and a
//! [`BddSession`] can be *reset* back to a cold-equivalent state while
//! keeping its allocations. The engine exploits that twice:
//!
//! * **Warm sessions** — every pool worker keeps one [`WarmSession`] for
//!   its whole lifetime and rehydrates each job into it. A successful
//!   [`BddSession::reset`] makes the manager observationally identical to
//!   a freshly built one (same unique-table capacity, same operation-cache
//!   growth schedule, same gauges) while reusing the arena's allocation,
//!   so per-job reports stay byte-identical to cold runs and the batch
//!   remains worker-count deterministic.
//! * **The solved-subrelation cache** — jobs whose relations are equal up
//!   to row order, duplicate pairs and irrelevant input columns (see
//!   [`brel_core::relation_fingerprint`]) are solved once; later jobs take
//!   the memoized [`SolutionReport`]s. Hits are all-or-nothing per job:
//!   either every backend of the portfolio is served from the cache, or
//!   the whole portfolio re-executes from a fresh rehydration, so a cached
//!   report is always the product of a full clean portfolio run and
//!   byte-identical (timing aside) to what re-solving would produce.
//!
//! Whether a particular job was served warm or from the cache depends on
//! scheduling, so the per-attempt [`ReuseStats`] flags and the per-batch
//! [`BatchReuse`] counters are *timing-class* data: they are only
//! serialized when `include_timing` is set (see [`crate::report`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use brel_bdd::{BddConfig, BddSession};
use brel_relation::{BooleanRelation, RelationSpace};

use crate::backend::SolutionReport;
use crate::job::{JobSpec, RelationSpec};

/// How one backend attempt was produced, for reuse accounting. Scheduling
/// decides which jobs land on a warm session or hit the cache, so these
/// flags are excluded from timing-free serializations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReuseStats {
    /// The relation was rehydrated into a reset (warm) worker session
    /// rather than a freshly constructed manager.
    pub warm_session: bool,
    /// The report was served from the cross-job solved-subrelation cache.
    pub subrel_cache_hit: bool,
}

/// Batch-level reuse counters, aggregated over every worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchReuse {
    /// Rehydrations that reused a warm worker session.
    pub warm_reuses: u64,
    /// Rehydrations that had to build a fresh manager (first job of each
    /// worker, or a failed reset).
    pub cold_builds: u64,
    /// Jobs whose whole portfolio was served from the subrelation cache.
    pub subrel_cache_hits: u64,
    /// Jobs that executed and (when solvable) populated the cache.
    pub subrel_cache_misses: u64,
    /// Sessions discarded after a panic or resource abort (see
    /// [`WarmSession::quarantine`]); the next rehydration builds cold.
    pub quarantines: u64,
}

impl BatchReuse {
    /// The counters as `(name, value)` pairs, for absorption into a
    /// [`brel_obs::MetricsRegistry`].
    pub fn metrics(&self) -> [(&'static str, u64); 5] {
        [
            ("warm_reuses", self.warm_reuses),
            ("cold_builds", self.cold_builds),
            ("subrel_cache_hits", self.subrel_cache_hits),
            ("subrel_cache_misses", self.subrel_cache_misses),
            ("quarantines", self.quarantines),
        ]
    }
}

impl ReuseStats {
    /// The flags as `(name, value)` pairs (`0`/`1`), for absorption into
    /// a [`brel_obs::MetricsRegistry`].
    pub fn metrics(&self) -> [(&'static str, u64); 2] {
        [
            ("warm_session", u64::from(self.warm_session)),
            ("subrel_cache_hit", u64::from(self.subrel_cache_hit)),
        ]
    }
}

/// A persistent per-worker BDD session, rehydrating successive jobs into
/// one reusable manager. The single rehydration path of the engine: the
/// one-shot [`RelationSpec::rehydrate`] and wide mode's per-expansion
/// rehydration both go through here.
#[derive(Debug)]
pub struct WarmSession {
    session: Option<BddSession>,
    keep_warm: bool,
    warm_reuses: u64,
    cold_builds: u64,
    quarantines: u64,
}

impl Default for WarmSession {
    fn default() -> Self {
        WarmSession::new()
    }
}

impl WarmSession {
    /// A session that stays warm across rehydrations.
    pub fn new() -> Self {
        WarmSession {
            session: None,
            keep_warm: true,
            warm_reuses: 0,
            cold_builds: 0,
            quarantines: 0,
        }
    }

    /// A session that rebuilds a fresh manager on every rehydration —
    /// the pre-redesign per-job behaviour, kept for oracle comparisons
    /// (see [`crate::EngineConfig::reuse`]).
    pub fn cold() -> Self {
        WarmSession {
            session: None,
            keep_warm: false,
            warm_reuses: 0,
            cold_builds: 0,
            quarantines: 0,
        }
    }

    /// Quarantines the stored session: a job that panicked or hit a
    /// resource abort may leave the manager in an arbitrary intermediate
    /// state, so it is discarded outright — never reset, never rehydrated
    /// into — and the next rehydration builds a cold manager. The engine
    /// calls this on *every* classified fault (panic, quota, deadline);
    /// only clean truncations keep their session.
    pub fn quarantine(&mut self) {
        self.session = None;
        self.quarantines += 1;
        brel_obs::event(brel_obs::Category::Session, "quarantine");
        brel_obs::count(brel_obs::Category::Session, "session.quarantines", 1);
    }

    /// Rehydrates a spec into this session's manager, resetting the warm
    /// manager when possible and building a fresh one otherwise. Returns
    /// the space, the relation, and whether the warm path was taken.
    ///
    /// The manager is pre-sized from the row count: a characteristic
    /// function built from `P` related pairs over `n + m` variables lands
    /// near `P · (n + m)` decision nodes in the common case. Construction
    /// leaves minterm-accumulation garbage behind, so one collection runs
    /// before the relation is handed to the backends.
    pub fn rehydrate(&mut self, spec: &RelationSpec) -> (RelationSpace, BooleanRelation, bool) {
        self.rehydrate_with(spec, BddConfig::from_env())
    }

    /// [`WarmSession::rehydrate`] with automatic variable reordering
    /// forced off, whatever the environment says. Wide mode uses this:
    /// its sessions stay warm across many expansions, so a sifting pass
    /// would fire at a point that depends on which subproblems a worker
    /// happened to execute — making BDD shapes (and thus costs) depend
    /// on steal order.
    pub fn rehydrate_stable(
        &mut self,
        spec: &RelationSpec,
    ) -> (RelationSpace, BooleanRelation, bool) {
        self.rehydrate_with(spec, BddConfig::from_env().auto_reorder(false))
    }

    fn rehydrate_with(
        &mut self,
        spec: &RelationSpec,
        config: BddConfig,
    ) -> (RelationSpace, BooleanRelation, bool) {
        let _span = brel_obs::span(brel_obs::Category::Session, "rehydrate");
        let num_vars = spec.num_inputs() + spec.num_outputs();
        let pairs: usize = spec.rows().iter().map(|(_, outs)| outs.len().max(1)).sum();
        let expected_nodes = pairs.saturating_mul(num_vars);
        let (session, warm) = self.obtain(num_vars, expected_nodes, config);
        let space = RelationSpace::from_session(session, spec.num_inputs(), spec.num_outputs());
        let relation = BooleanRelation::from_rows(&space, spec.rows())
            .expect("arities were validated at construction");
        space.collect_garbage();
        (space, relation, warm)
    }

    /// Prepares a sized session *without* constructing a relation — the
    /// wide-mode entry point for workers that receive their subproblems
    /// as in-manager handles (or steal them as rows later) rather than
    /// rehydrating a spec up front. Reordering is forced off for the
    /// same steal-order-determinism reason as
    /// [`WarmSession::rehydrate_stable`]. Returns the session and
    /// whether the warm path was taken.
    pub fn prepare(&mut self, num_vars: usize, expected_nodes: usize) -> (BddSession, bool) {
        let _span = brel_obs::span(brel_obs::Category::Session, "prepare");
        let config = BddConfig::from_env().auto_reorder(false);
        self.obtain(num_vars, expected_nodes, config)
    }

    /// The single reset-or-build path behind [`WarmSession::rehydrate`]
    /// and [`WarmSession::prepare`].
    fn obtain(
        &mut self,
        num_vars: usize,
        expected_nodes: usize,
        config: BddConfig,
    ) -> (BddSession, bool) {
        let mut warm = false;
        // A reset can only fail while handles from the previous job are
        // still rooted; the engine drops them before re-entering, so the
        // fallback is a safety net, not a code path jobs normally take.
        let session = match self.session.take() {
            Some(previous) => {
                let reset_ok = {
                    let _reset = brel_obs::span(brel_obs::Category::Session, "reset");
                    previous.reset(num_vars, expected_nodes, config)
                };
                if reset_ok {
                    warm = true;
                    previous
                } else {
                    BddSession::with_config(num_vars, expected_nodes, config)
                }
            }
            None => BddSession::with_config(num_vars, expected_nodes, config),
        };
        if self.keep_warm {
            self.session = Some(session.clone());
        }
        if warm {
            self.warm_reuses += 1;
            brel_obs::event(brel_obs::Category::Session, "warm_hit");
            brel_obs::count(brel_obs::Category::Session, "session.warm_reuses", 1);
        } else {
            self.cold_builds += 1;
            brel_obs::event(brel_obs::Category::Session, "cold_build");
            brel_obs::count(brel_obs::Category::Session, "session.cold_builds", 1);
        }
        (session, warm)
    }

    /// `(warm_reuses, cold_builds, quarantines)` of this session so far.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.warm_reuses, self.cold_builds, self.quarantines)
    }
}

/// The key of one memoized backend attempt. The fingerprint canonicalizes
/// the relation; the remaining fields pin everything else that shapes the
/// report — including the *portfolio prefix* `backends[..=i]`, because the
/// attempts of one job share a manager and a backend's kernel counters
/// depend on which backends ran before it on that manager.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct SubrelKey {
    fingerprint: u64,
    cost: crate::job::CostSpec,
    budget: crate::job::JobBudget,
    strategy: brel_core::SearchStrategy,
    // The fault policy shapes the report (step deadlines truncate, quotas
    // abort), so jobs under different policies never share cache entries.
    fault: crate::fault::FaultPolicy,
    prefix: Vec<crate::job::BackendKind>,
}

impl SubrelKey {
    fn new(fingerprint: u64, job: &JobSpec, attempt: usize) -> Self {
        SubrelKey {
            fingerprint,
            cost: job.cost,
            budget: job.budget,
            strategy: job.strategy,
            fault: job.fault,
            prefix: job.backends[..=attempt].to_vec(),
        }
    }
}

/// The shared cross-job solved-subrelation cache plus its hit/miss
/// counters. One instance per batch, shared by every worker.
#[derive(Debug)]
pub(crate) struct ReuseState {
    enabled: bool,
    map: Mutex<HashMap<SubrelKey, SolutionReport>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ReuseState {
    pub(crate) fn new(enabled: bool) -> Self {
        ReuseState {
            enabled,
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    pub(crate) fn disabled() -> Self {
        ReuseState::new(false)
    }

    /// Looks up the whole portfolio of a job. Returns the memoized reports
    /// only when *every* attempt is cached (all-or-nothing, so a cached
    /// report is always the product of a full portfolio run) and counts
    /// the job as one hit or one miss.
    pub(crate) fn lookup_job(
        &self,
        fingerprint: u64,
        job: &JobSpec,
    ) -> Option<Vec<SolutionReport>> {
        if !self.enabled || job.backends.is_empty() {
            return None;
        }
        let found = {
            let map = self.map.lock().expect("subrel cache poisoned");
            (0..job.backends.len())
                .map(|i| map.get(&SubrelKey::new(fingerprint, job, i)).cloned())
                .collect::<Option<Vec<_>>>()
        };
        match found {
            Some(reports) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(reports)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a fully executed portfolio. Skipped when any backend
    /// failed (`attempts` shorter than the backend list), so partial runs
    /// never pollute the cache.
    pub(crate) fn insert_job(&self, fingerprint: u64, job: &JobSpec, attempts: &[SolutionReport]) {
        if !self.enabled || attempts.len() != job.backends.len() || attempts.is_empty() {
            return;
        }
        let mut map = self.map.lock().expect("subrel cache poisoned");
        for (i, attempt) in attempts.iter().enumerate() {
            map.insert(SubrelKey::new(fingerprint, job, i), attempt.clone());
        }
    }

    /// `(hits, misses)` counted so far.
    pub(crate) fn counts(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_sessions_reset_and_count() {
        let mut warm = WarmSession::new();
        let space = RelationSpace::new(2, 1);
        let r = BooleanRelation::from_table(&space, "00:{0}\n01:{1}\n10:{1}\n11:{0}").unwrap();
        let spec = RelationSpec::from_relation(&r).unwrap();
        let (s1, r1, was_warm) = warm.rehydrate(&spec);
        assert!(!was_warm, "first rehydration is cold");
        assert!(r1.is_well_defined());
        drop((s1, r1));
        let (s2, r2, was_warm) = warm.rehydrate(&spec);
        assert!(was_warm, "second rehydration reuses the session");
        assert!(r2.is_well_defined());
        drop((s2, r2));
        assert_eq!(warm.counts(), (1, 1, 0));
    }

    #[test]
    fn quarantined_sessions_rebuild_cold() {
        let mut warm = WarmSession::new();
        let space = RelationSpace::new(2, 1);
        let r = BooleanRelation::from_table(&space, "00:{0}\n01:{1}\n10:{1}\n11:{0}").unwrap();
        let spec = RelationSpec::from_relation(&r).unwrap();
        let (s1, r1, _) = warm.rehydrate(&spec);
        drop((s1, r1));
        warm.quarantine();
        let (s2, r2, was_warm) = warm.rehydrate(&spec);
        assert!(!was_warm, "a quarantined session is never rehydrated");
        assert!(r2.is_well_defined());
        drop((s2, r2));
        assert_eq!(warm.counts(), (0, 2, 1));
    }

    #[test]
    fn cold_sessions_never_go_warm() {
        let mut cold = WarmSession::cold();
        let space = RelationSpace::new(1, 1);
        let r = BooleanRelation::from_table(&space, "0:{0}\n1:{1}").unwrap();
        let spec = RelationSpec::from_relation(&r).unwrap();
        for _ in 0..3 {
            let (_s, _r, was_warm) = cold.rehydrate(&spec);
            assert!(!was_warm);
        }
        assert_eq!(cold.counts(), (0, 3, 0));
    }

    #[test]
    fn warm_rehydration_matches_cold_gauges() {
        // The engine's determinism hinges on reset being observationally
        // cold: a warm rehydration must report the same kernel gauges as a
        // fresh one.
        let space = RelationSpace::new(3, 2);
        let r = BooleanRelation::from_table(
            &space,
            "000:{00}\n001:{01,10}\n010:{11}\n011:{00}\n100:{10}\n101:{01}\n110:{11,00}\n111:{01}",
        )
        .unwrap();
        let spec = RelationSpec::from_relation(&r).unwrap();
        let gauges = |space: &RelationSpace| {
            let cache = space.mgr().cache_stats();
            let gc = space.gc_stats();
            (
                cache.unique_len,
                cache.unique_capacity,
                cache.cache_slots,
                cache.num_nodes,
                gc.live_nodes,
                gc.var_order_hash,
            )
        };
        let mut warm = WarmSession::new();
        let (s_cold, r_cold, _) = warm.rehydrate(&spec);
        let cold_gauges = gauges(&s_cold);
        drop((s_cold, r_cold));
        let (s_warm, r_warm, was_warm) = warm.rehydrate(&spec);
        assert!(was_warm);
        assert_eq!(gauges(&s_warm), cold_gauges);
        drop((s_warm, r_warm));
    }

    #[test]
    fn prepare_reuses_the_warm_manager_like_rehydrate() {
        let mut warm = WarmSession::new();
        let (s1, was_warm) = warm.prepare(3, 64);
        assert!(!was_warm, "first prepare is cold");
        drop(s1);
        let (s2, was_warm) = warm.prepare(3, 64);
        assert!(was_warm, "second prepare reuses the session");
        drop(s2);
        // prepare and rehydrate share one warm session.
        let space = RelationSpace::new(2, 1);
        let r = BooleanRelation::from_table(&space, "00:{0}\n01:{1}\n10:{1}\n11:{0}").unwrap();
        let spec = RelationSpec::from_relation(&r).unwrap();
        let (s3, r3, was_warm) = warm.rehydrate_stable(&spec);
        assert!(was_warm, "rehydrate_stable reuses the prepared session");
        assert!(r3.is_well_defined());
        drop((s3, r3));
        assert_eq!(warm.counts(), (2, 1, 0));
    }

    #[test]
    fn disabled_cache_never_hits() {
        let state = ReuseState::disabled();
        let space = RelationSpace::new(1, 1);
        let r = BooleanRelation::from_table(&space, "0:{0}\n1:{1}").unwrap();
        let job = JobSpec::portfolio("j", RelationSpec::from_relation(&r).unwrap());
        assert!(state.lookup_job(1, &job).is_none());
        assert_eq!(state.counts(), (0, 0));
    }
}
