//! # brel-engine
//!
//! A parallel, deterministic batch-solving engine for Boolean relations:
//! the throughput layer over the workspace's three solvers (the BREL
//! branch-and-bound solver, the gyocro-style baseline, and the quick
//! output-ordered solver).
//!
//! The BDD substrate is `Send` ([`brel_bdd::BddSession`] owns its manager
//! behind an `Arc<Mutex<..>>`), but the engine still ships *specs*, not
//! BDDs, across threads — rehydration is what makes batch output a pure
//! function of the input:
//!
//! * a [`JobSpec`] carries an owned, manager-free [`RelationSpec`]
//!   (canonical tabular rows, see
//!   [`brel_relation::BooleanRelation::to_rows`]) plus a backend list, a
//!   [`CostSpec`] and a [`JobBudget`];
//! * each pool worker rehydrates the relation into its own [`WarmSession`]
//!   — kept warm across jobs via [`brel_bdd::BddSession::reset`], which is
//!   observationally cold — and runs every requested backend through the
//!   uniform [`SolverBackend`] trait; several backends form a *portfolio*
//!   whose cheapest solution (under the job's cost function) is selected
//!   as the winner;
//! * workers share a cross-job *solved-subrelation cache* keyed by the
//!   canonical [`RelationSpec::fingerprint`]: a batch containing the same
//!   relation twice (even with permuted rows or renamed-away irrelevant
//!   inputs) solves it once. Hits are all-or-nothing per job, so cached
//!   reports are byte-identical to recomputation (see [`reuse`]);
//! * the [`Engine`] fans a batch of jobs over a worker pool and collects
//!   [`JobReport`]s sorted by job id, so batch output is byte-identical
//!   regardless of the worker count (see [`report`] for the JSON/CSV
//!   serializations that pin this down); warm/cache provenance is reported
//!   in [`ReuseStats`]/[`BatchReuse`] but serialized only alongside
//!   timings;
//! * each job carries a [`SearchStrategy`] for its BREL backend, and
//!   [`Engine::with_wide`] flips the pool into *wide* mode — an
//!   asynchronous work-stealing search inside each BREL solve (see
//!   [`wide`]) over per-worker warm sessions that persist across jobs,
//!   with the same worker-count determinism guarantee;
//! * the engine is *fault-tolerant*: every attempt runs behind a panic
//!   isolation boundary, a [`FaultPolicy`] per job arms the kernel's
//!   resource governor (live-node quota, wall deadline) and a cooperative
//!   step deadline, faulted sessions are quarantined and rebuilt cold,
//!   transient faults retry with bounded backoff, and a degradation
//!   ladder keeps one verified row per solvable job — classified by
//!   [`JobOutcome`]. A seeded [`FaultPlan`] injects deterministic faults
//!   for chaos testing ([`Engine::with_fault_plan`]).
//!
//! ```
//! use brel_engine::{Engine, JobSpec, RelationSpec};
//! use brel_relation::{BooleanRelation, RelationSpace};
//!
//! // Fig. 1a of the paper, shipped to a 2-worker pool as a portfolio job.
//! let space = RelationSpace::new(2, 2);
//! let r = BooleanRelation::from_table(
//!     &space,
//!     "00 : {00}\n01 : {00}\n10 : {00, 11}\n11 : {10, 11}",
//! ).unwrap();
//! let job = JobSpec::portfolio("fig1", RelationSpec::from_relation(&r).unwrap());
//! let batch = Engine::with_workers(2).solve_batch(&[job]);
//! assert_eq!(batch.num_solved(), 1);
//! let winner = batch.jobs[0].winning().unwrap();
//! assert!(winner.cost > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod control;
mod fault;
mod job;
mod pool;
mod portfolio;
pub mod report;
pub mod reuse;
pub mod wide;

pub use backend::{execute, instantiate, BackendRun, SolutionReport, SolverBackend};
pub use brel_core::{CancelToken, SearchStrategy};
pub use control::JobControl;
pub use fault::{
    quiet_fault_panics, FaultInjection, FaultKind, FaultPlan, FaultPolicy, InjectedPanic,
    JobOutcome,
};
pub use job::{BackendKind, CostSpec, JobBudget, JobSpec, RelationSpec};
pub use pool::{BatchReport, Engine, EngineConfig};
pub use portfolio::{
    run_job, run_job_controlled, run_job_warm, run_job_wide, run_job_wide_controlled, JobReport,
};
pub use report::Json;
pub use reuse::{BatchReuse, ReuseStats, WarmSession};
pub use wide::{solve_wide, solve_wide_with, StaggerPlan, WideOptions};
