//! ISF minimization strategies (Section 7.5, Table 1 of the paper).
//!
//! Each ISF of the projected MISF is minimized individually. The paper
//! compares four BDD-based strategies — irredundant SOP generation
//! (Minato–Morreale), the `constrain` and `restrict` generalized cofactors
//! and the `LICompact` safe minimization — each optionally preceded by the
//! greedy elimination of non-essential variables, and selects ISOP with
//! variable elimination as the default.

use brel_bdd::Bdd;
use brel_relation::Isf;

/// The underlying don't-care exploitation method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MinimizerKind {
    /// Minato–Morreale irredundant sum of products (the default).
    #[default]
    Isop,
    /// The `constrain` generalized cofactor of the onset by the care set.
    Constrain,
    /// The `restrict` generalized cofactor.
    Restrict,
    /// Safe (never-growing) BDD minimization, in the spirit of LICompact.
    LiCompact,
}

/// An ISF minimizer: a [`MinimizerKind`] plus the optional non-essential
/// variable elimination pre-pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IsfMinimizer {
    /// The don't-care exploitation method.
    pub kind: MinimizerKind,
    /// Whether to eliminate non-essential variables before minimizing.
    pub eliminate_non_essential: bool,
}

impl Default for IsfMinimizer {
    fn default() -> Self {
        IsfMinimizer {
            kind: MinimizerKind::Isop,
            eliminate_non_essential: true,
        }
    }
}

impl IsfMinimizer {
    /// Creates a minimizer with variable elimination enabled.
    pub fn new(kind: MinimizerKind) -> Self {
        IsfMinimizer {
            kind,
            eliminate_non_essential: true,
        }
    }

    /// Creates a minimizer without the variable-elimination pre-pass.
    pub fn without_elimination(kind: MinimizerKind) -> Self {
        IsfMinimizer {
            kind,
            eliminate_non_essential: false,
        }
    }

    /// Minimizes the ISF: returns a completely specified function lying in
    /// the interval `[on, on ∪ dc]`.
    pub fn minimize(&self, isf: &Isf) -> Bdd {
        let (mut lower, mut upper) = (isf.on().clone(), isf.upper());
        if self.eliminate_non_essential {
            // Greedily drop variables (top to bottom of the order) as long as
            // the interval [∃z lower, ∀z upper] stays non-empty.
            for &z in isf.space().input_vars() {
                let lower_q = lower.exists(&[z]);
                let upper_q = upper.forall(&[z]);
                if lower_q.is_subset_of(&upper_q) {
                    lower = lower_q;
                    upper = upper_q;
                }
            }
        }
        let result = match self.kind {
            MinimizerKind::Isop => {
                let isop = lower.isop_interval(&upper);
                Bdd::from_node_id(lower.manager(), isop.function)
            }
            MinimizerKind::Constrain => {
                let care = lower.or(&upper.complement());
                if care.is_zero() {
                    lower.clone()
                } else {
                    Self::clamp(lower.constrain(&care), &lower, &upper)
                }
            }
            MinimizerKind::Restrict => {
                let care = lower.or(&upper.complement());
                if care.is_zero() {
                    lower.clone()
                } else {
                    Self::clamp(lower.restrict(&care), &lower, &upper)
                }
            }
            MinimizerKind::LiCompact => {
                let care = lower.or(&upper.complement());
                if care.is_zero() {
                    lower.clone()
                } else {
                    Self::clamp(lower.li_compact(&care), &lower, &upper)
                }
            }
        };
        debug_assert!(lower.is_subset_of(&result) && result.is_subset_of(&upper));
        result
    }

    /// Generalized cofactors guarantee agreement on the care set but may
    /// stray outside the interval on the don't-care set only in pathological
    /// orderings; clamp back into the interval to be safe.
    fn clamp(candidate: Bdd, lower: &Bdd, upper: &Bdd) -> Bdd {
        candidate.or(lower).and(upper)
    }

    /// The four strategy combinations compared in Table 1 of the paper, in
    /// the order used by the benchmark harness.
    pub fn table1_strategies() -> Vec<(&'static str, IsfMinimizer)> {
        vec![
            ("ISOP+elim", IsfMinimizer::new(MinimizerKind::Isop)),
            (
                "ISOP",
                IsfMinimizer::without_elimination(MinimizerKind::Isop),
            ),
            (
                "Constrain+elim",
                IsfMinimizer::new(MinimizerKind::Constrain),
            ),
            (
                "Constrain",
                IsfMinimizer::without_elimination(MinimizerKind::Constrain),
            ),
            ("Restrict+elim", IsfMinimizer::new(MinimizerKind::Restrict)),
            (
                "Restrict",
                IsfMinimizer::without_elimination(MinimizerKind::Restrict),
            ),
            (
                "LICompact+elim",
                IsfMinimizer::new(MinimizerKind::LiCompact),
            ),
            (
                "LICompact",
                IsfMinimizer::without_elimination(MinimizerKind::LiCompact),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brel_relation::RelationSpace;

    fn sample_isf(space: &RelationSpace) -> Isf {
        let a = space.input(0);
        let b = space.input(1);
        let c = space.input(2);
        // on = a·b·c ; dc = a·(b ⊕ c) ∪ ¬a·¬b·¬c
        let on = a.and(&b).and(&c);
        let dc = a
            .and(&b.xor(&c))
            .or(&a.complement().and(&b.complement()).and(&c.complement()));
        Isf::new(space, on, dc)
    }

    #[test]
    fn every_strategy_stays_in_the_interval() {
        let space = RelationSpace::new(3, 1);
        let isf = sample_isf(&space);
        for (name, strategy) in IsfMinimizer::table1_strategies() {
            let f = strategy.minimize(&isf);
            assert!(isf.admits(&f), "strategy {name} left the interval");
        }
    }

    #[test]
    fn elimination_never_hurts_admissibility_and_reduces_support() {
        let space = RelationSpace::new(2, 1);
        let a = space.input(0);
        let b = space.input(1);
        // on = a·b, dc = a·b' : implementable as `a` alone.
        let isf = Isf::new(&space, a.and(&b), a.and(&b.complement()));
        let with = IsfMinimizer::new(MinimizerKind::Isop).minimize(&isf);
        let without = IsfMinimizer::without_elimination(MinimizerKind::Isop).minimize(&isf);
        assert!(isf.admits(&with));
        assert!(isf.admits(&without));
        assert!(with.support().len() <= without.support().len());
        assert_eq!(with.support(), vec![space.input_var(0)]);
    }

    #[test]
    fn completely_specified_isf_is_returned_exactly() {
        let space = RelationSpace::new(2, 1);
        let a = space.input(0);
        let b = space.input(1);
        let isf = Isf::completely_specified(&space, a.xor(&b));
        for (_, strategy) in IsfMinimizer::table1_strategies() {
            assert_eq!(strategy.minimize(&isf), a.xor(&b));
        }
    }

    #[test]
    fn full_dc_isf_minimizes_to_a_constant() {
        let space = RelationSpace::new(2, 1);
        let isf = Isf::new(&space, space.mgr().zero(), space.mgr().one());
        let f = IsfMinimizer::default().minimize(&isf);
        assert!(f.is_constant());
    }

    #[test]
    fn isop_tends_to_be_smallest_in_literals() {
        let space = RelationSpace::new(3, 1);
        let isf = sample_isf(&space);
        let isop = IsfMinimizer::new(MinimizerKind::Isop).minimize(&isf);
        let constrain = IsfMinimizer::new(MinimizerKind::Constrain).minimize(&isf);
        let lits = |f: &Bdd| f.isop().num_literals();
        assert!(lits(&isop) <= lits(&constrain));
    }
}
