//! The strategy-driven search core of the BREL solver.
//!
//! The paper's recursive paradigm (Section 7) explores a semilattice of
//! subrelations: each explored node minimizes the MISF over-approximation,
//! prunes or accepts the candidate, and otherwise splits the subrelation in
//! two. *How* the pending subproblems are ordered is a policy, not part of
//! the semantics — this module factors that policy out:
//!
//! * a [`Subproblem`] is one pending node: a subrelation, its depth and the
//!   lower bound inherited from its parent's MISF-minimized candidate cost
//!   (constraining a relation further can never beat a candidate obtained
//!   with strictly more flexibility, the invariant the cost pruning of §7.3
//!   already relies on);
//! * a [`Frontier`] stores pending subproblems; [`FifoFrontier`] reproduces
//!   the paper's partial-BFS order (the default — batch fingerprints are
//!   unchanged), [`DfsFrontier`] dives depth-first on the most recently
//!   split half, and [`BestFirstFrontier`] pops the lowest lower bound
//!   first (ties broken by insertion order) and lets the explorer drop
//!   popped nodes that can no longer beat the incumbent (dominance
//!   pruning);
//! * an [`Explorer`] owns the incumbent, statistics, trace and frontier and
//!   is *incremental*: [`Explorer::step`] explores one subproblem,
//!   [`Explorer::run_budget`] explores up to a per-call step budget and can
//!   be resumed, turning the solver into an anytime optimizer — the best
//!   compatible solution is available after every step;
//! * [`expand`] is the pure per-node transition (minimize → classify →
//!   quick-seed → split) shared by the sequential explorer and the engine's
//!   parallel wide mode, which rehydrates subproblems into per-worker
//!   managers and calls it remotely.

use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use brel_bdd::GcStats;
use brel_relation::{BooleanRelation, MultiOutputFunction, RelationError};

use crate::cost::{CostFn, CostFunction};
use crate::minimize_isf::IsfMinimizer;
use crate::quick::QuickSolver;
use crate::solver::{BrelConfig, Solution, SolveStats, TraceEvent};
use crate::symmetry::SymmetryCache;

/// Which frontier discipline drives the exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SearchStrategy {
    /// Partial breadth-first (the paper's §7.2 order and the default; keeps
    /// batch fingerprints identical to the historical solver).
    #[default]
    Fifo,
    /// Depth-first: dives on the most recently split subrelation, reaching
    /// deep incumbents quickly with a small frontier.
    Dfs,
    /// Best-first: pops the pending subproblem with the lowest lower bound,
    /// with dominance pruning against the incumbent.
    BestFirst,
}

impl SearchStrategy {
    /// Short stable name used in reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            SearchStrategy::Fifo => "fifo",
            SearchStrategy::Dfs => "dfs",
            SearchStrategy::BestFirst => "best-first",
        }
    }

    /// Parses a CLI-style name (`fifo`, `dfs`, `best-first`).
    pub fn parse(s: &str) -> Option<SearchStrategy> {
        match s {
            "fifo" => Some(SearchStrategy::Fifo),
            "dfs" => Some(SearchStrategy::Dfs),
            "best-first" | "best_first" | "bestfirst" => Some(SearchStrategy::BestFirst),
            _ => None,
        }
    }

    /// Every strategy, in the deterministic comparison order.
    pub fn all() -> [SearchStrategy; 3] {
        [
            SearchStrategy::Fifo,
            SearchStrategy::Dfs,
            SearchStrategy::BestFirst,
        ]
    }

    /// Instantiates the frontier implementing this strategy.
    pub fn frontier(&self) -> Box<dyn Frontier> {
        match self {
            SearchStrategy::Fifo => Box::new(FifoFrontier::default()),
            SearchStrategy::Dfs => Box::new(DfsFrontier::default()),
            SearchStrategy::BestFirst => Box::new(BestFirstFrontier::default()),
        }
    }
}

impl fmt::Display for SearchStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One pending node of the exploration: a subrelation plus where it sits in
/// the search tree.
#[derive(Debug, Clone)]
pub struct Subproblem {
    /// The subrelation still to be explored.
    pub relation: BooleanRelation,
    /// Distance from the root relation (number of splits on the path).
    pub depth: usize,
    /// Lower bound on the cost of any solution in this subtree: the parent's
    /// MISF-minimized candidate cost (0 for the root).
    pub lower_bound: u64,
}

/// Storage policy for pending subproblems. Implementations decide *order*
/// only; budgets, capacity and pruning accounting stay in the [`Explorer`]
/// so every strategy shares the same split/prune semantics.
pub trait Frontier: fmt::Debug {
    /// The strategy this frontier implements (used in reports).
    fn strategy(&self) -> SearchStrategy;

    /// Adds a pending subproblem.
    fn push(&mut self, subproblem: Subproblem);

    /// Removes and returns the next subproblem to explore.
    fn pop(&mut self) -> Option<Subproblem>;

    /// Number of pending subproblems.
    fn len(&self) -> usize;

    /// `true` if no subproblem is pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the explorer should discard popped subproblems whose lower
    /// bound can no longer beat the incumbent (dominance pruning). Off for
    /// FIFO/DFS to preserve their historical exploration order exactly.
    fn prunes_dominated(&self) -> bool {
        false
    }
}

/// The paper's partial-BFS order: first split, first explored.
#[derive(Debug, Default)]
pub struct FifoFrontier {
    queue: VecDeque<Subproblem>,
}

impl Frontier for FifoFrontier {
    fn strategy(&self) -> SearchStrategy {
        SearchStrategy::Fifo
    }

    fn push(&mut self, subproblem: Subproblem) {
        self.queue.push_back(subproblem);
    }

    fn pop(&mut self) -> Option<Subproblem> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Depth-first order: the most recently split half is explored next.
#[derive(Debug, Default)]
pub struct DfsFrontier {
    stack: Vec<Subproblem>,
}

impl Frontier for DfsFrontier {
    fn strategy(&self) -> SearchStrategy {
        SearchStrategy::Dfs
    }

    fn push(&mut self, subproblem: Subproblem) {
        self.stack.push(subproblem);
    }

    fn pop(&mut self) -> Option<Subproblem> {
        self.stack.pop()
    }

    fn len(&self) -> usize {
        self.stack.len()
    }
}

/// Heap entry ordered by `(lower_bound, seq)` with the comparison reversed,
/// so `BinaryHeap`'s max-pop yields the lowest bound, FIFO among ties.
#[derive(Debug)]
struct Ranked {
    bound: u64,
    seq: u64,
    subproblem: Subproblem,
}

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.seq == other.seq
    }
}

impl Eq for Ranked {}

impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .bound
            .cmp(&self.bound)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Best-first order: lowest lower bound first, insertion order among equal
/// bounds (so it degrades to FIFO when every bound is equal). Enables
/// dominance pruning in the explorer.
#[derive(Debug, Default)]
pub struct BestFirstFrontier {
    heap: BinaryHeap<Ranked>,
    seq: u64,
}

impl Frontier for BestFirstFrontier {
    fn strategy(&self) -> SearchStrategy {
        SearchStrategy::BestFirst
    }

    fn push(&mut self, subproblem: Subproblem) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Ranked {
            bound: subproblem.lower_bound,
            seq,
            subproblem,
        });
    }

    fn pop(&mut self) -> Option<Subproblem> {
        self.heap.pop().map(|r| r.subproblem)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn prunes_dominated(&self) -> bool {
        true
    }
}

/// The outcome of expanding one subproblem: the per-node transition of
/// Fig. 6, with no frontier or incumbent state attached. Pure with respect
/// to `(relation, prune_bound)`, which is what lets the engine's wide mode
/// compute expansions on worker threads and merge them deterministically.
#[derive(Debug)]
pub struct Expansion {
    /// The MISF-minimized candidate function.
    pub candidate: MultiOutputFunction,
    /// Its cost under the configured cost function.
    pub candidate_cost: u64,
    /// Whether the candidate is compatible with the subrelation.
    pub compatible: bool,
    /// The quick solver's compatible solution and its cost (the partial-BFS
    /// guarantee of §7.2). Only computed when the node splits.
    pub quick: Option<(MultiOutputFunction, u64)>,
    /// The split halves; `None` iff the candidate was compatible or the
    /// candidate cost reached `prune_bound` (the branch would be pruned).
    pub split: Option<SplitExpansion>,
}

/// The split half of an [`Expansion`].
#[derive(Debug)]
pub struct SplitExpansion {
    /// The conflicting input vertex chosen (§7.4).
    pub vertex: Vec<bool>,
    /// The output chosen for the split.
    pub output: usize,
    /// `R_{x ȳᵢ}`: the half forbidding `yᵢ = 1` at the vertex.
    pub negative: BooleanRelation,
    /// `R_{x yᵢ}`: the half forbidding `yᵢ = 0` at the vertex.
    pub positive: BooleanRelation,
}

/// Expands one subrelation: minimizes its MISF, classifies the candidate
/// and — when the candidate is incompatible and `candidate_cost <
/// prune_bound` — quick-solves the subrelation and splits it at a
/// conflicting vertex.
///
/// # Errors
///
/// Returns [`RelationError::NoSplitPoint`] if an incompatible candidate has
/// no vertex/output pair satisfying Theorem 5.2. For a well-defined
/// relation this is provably unreachable: a conflicting vertex `x` has
/// `|R(x)| ≥ 2` (a singleton image fixes every output projection at `x`, so
/// the candidate — which lies inside the projection intervals — could not
/// conflict there), and two distinct related output vertices differ in some
/// output, giving that output `{0, 1}` flexibility at `x`. The error is
/// kept structured rather than silently ignored so a corrupted relation
/// fails loudly instead of degrading the search.
pub fn expand(
    minimizer: &IsfMinimizer,
    cost: &CostFn,
    quick: &QuickSolver,
    relation: &BooleanRelation,
    prune_bound: u64,
) -> Result<Expansion, RelationError> {
    // Step (a)+(b): over-approximate by the MISF and minimize it.
    let misf = relation.to_misf();
    let candidate_outputs: Vec<_> = misf
        .outputs()
        .iter()
        .map(|isf| minimizer.minimize(isf))
        .collect();
    let candidate = MultiOutputFunction::new(relation.space(), candidate_outputs)?;
    let candidate_cost = cost.cost(&candidate);
    let compatible = relation.is_compatible(&candidate);
    if compatible || candidate_cost >= prune_bound {
        return Ok(Expansion {
            candidate,
            candidate_cost,
            compatible,
            quick: None,
            split: None,
        });
    }

    // Incompatible: make sure this subrelation still contributes a
    // compatible incumbent (partial-BFS guarantee of §7.2)…
    let quick_solution = quick.solve(relation).ok().map(|q| {
        let q_cost = cost.cost(&q);
        (q, q_cost)
    });

    // …then split on a conflicting vertex.
    let conflicts = relation.conflicting_inputs(&candidate);
    let Some((vertex, output)) = relation.select_split_point(&conflicts) else {
        return Err(RelationError::NoSplitPoint { candidate_cost });
    };
    let (negative, positive) = relation.split(&vertex, output)?;
    Ok(Expansion {
        candidate,
        candidate_cost,
        compatible,
        quick: quick_solution,
        split: Some(SplitExpansion {
            vertex,
            output,
            negative,
            positive,
        }),
    })
}

/// A cooperative cancellation flag shared between a driver thread and a
/// running exploration. Cloning the token shares the flag; any clone can
/// request cancellation and the [`Explorer`] observes it at the next
/// [`Explorer::run_budget`] step boundary — between subproblems, never
/// inside one, so the incumbent in hand stays a valid, verified anytime
/// solution when the loop returns [`ExploreStatus::Cancelled`].
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent and never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested on any clone of this token.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A cross-thread best-known incumbent cost: a monotonically decreasing
/// atomic bound shared by several explorations of the *same* relation
/// (the engine's wide mode gives one to every worker). Cloning shares the
/// cell. Attached to an [`Explorer`] via [`Explorer::set_shared_bound`],
/// the bound tightens every prune check — dominance pruning fires the
/// moment *any* participant improves the incumbent, not just this one —
/// and every local improvement is published back.
///
/// Sharing a bound is sound because pruning is conservative: the bound
/// only ever decreases, so a prune decision taken against a stale (higher)
/// value is a decision the tighter bound would also have taken. An
/// explorer with no shared bound behaves exactly as before.
#[derive(Debug, Clone, Default)]
pub struct SharedBound {
    cell: Arc<AtomicU64>,
}

impl SharedBound {
    /// A fresh bound at `u64::MAX` (nothing known yet).
    pub fn new() -> Self {
        SharedBound {
            cell: Arc::new(AtomicU64::new(u64::MAX)),
        }
    }

    /// The current best-known cost (`u64::MAX` until first improved).
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Acquire)
    }

    /// Lowers the bound to `cost` if it improves on the current value
    /// (compare-and-swap min). Returns whether this call improved it.
    pub fn improve(&self, cost: u64) -> bool {
        let mut current = self.cell.load(Ordering::Acquire);
        while cost < current {
            match self.cell.compare_exchange_weak(
                current,
                cost,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
        false
    }
}

/// What one [`Explorer::step`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// One subproblem was expanded (dominance-pruned pops, if any, were
    /// consumed silently on the way).
    Explored {
        /// Cost of the MISF-minimized candidate.
        candidate_cost: u64,
        /// Whether the candidate was compatible.
        compatible: bool,
        /// Whether the incumbent improved during this step.
        improved: bool,
    },
    /// The frontier is empty: the search ran to completion.
    Exhausted,
    /// The configured `max_explored` budget is spent while subproblems are
    /// still pending; the explorer can be resumed after raising the budget.
    BudgetExhausted,
    /// The configured `step_deadline` (a fault-policy truncation, distinct
    /// from the quality budget `max_explored`) expired; the incumbent is
    /// kept, but the result counts as degraded.
    DeadlineExpired,
}

/// Why [`Explorer::run_budget`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreStatus {
    /// The frontier is empty; the incumbent is optimal within the explored
    /// space (globally optimal in exact mode).
    Complete,
    /// The configured `max_explored` budget is spent.
    BudgetExhausted,
    /// The per-call step budget is spent; call `run_budget` again to resume.
    Paused,
    /// The configured `step_deadline` expired (fault-policy truncation).
    DeadlineExpired,
    /// A [`CancelToken`] attached via [`Explorer::set_cancel_token`] was
    /// cancelled; the incumbent is kept and the frontier left intact, so
    /// the caller may still resume if it chooses to.
    Cancelled,
}

/// The incremental branch-and-bound exploration: owns the frontier, the
/// incumbent, statistics and trace, and advances one subproblem at a time.
/// A compatible incumbent (seeded by the quick solver) is available after
/// construction and only ever improves — pausing at any point yields a
/// valid anytime solution.
#[derive(Debug)]
pub struct Explorer {
    config: BrelConfig,
    quick: QuickSolver,
    frontier: Box<dyn Frontier>,
    symmetry: SymmetryCache,
    root: BooleanRelation,
    gc_before: GcStats,
    best: MultiOutputFunction,
    best_cost: u64,
    stats: SolveStats,
    trace: Vec<TraceEvent>,
    cancel: Option<CancelToken>,
    shared_bound: Option<SharedBound>,
}

impl Explorer {
    /// Creates an explorer over `relation` with the frontier named by
    /// `config.strategy`, seeded with the quick solver's compatible
    /// solution.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::NotWellDefined`] if the relation has no
    /// compatible function.
    pub fn new(config: BrelConfig, relation: &BooleanRelation) -> Result<Self, RelationError> {
        let frontier = config.strategy.frontier();
        Explorer::with_frontier(config, relation, frontier)
    }

    /// Creates an explorer with an explicit (possibly custom) frontier.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::NotWellDefined`] if the relation has no
    /// compatible function.
    pub fn with_frontier(
        config: BrelConfig,
        relation: &BooleanRelation,
        mut frontier: Box<dyn Frontier>,
    ) -> Result<Self, RelationError> {
        if !relation.is_well_defined() {
            return Err(RelationError::NotWellDefined);
        }
        relation.space().mgr().reset_peak_live_nodes();
        let gc_before = relation.space().mgr().gc_stats();
        let quick = QuickSolver::new().with_minimizer(config.minimizer);
        let mut stats = SolveStats::default();
        let mut trace = Vec::new();

        // Seed: the quick solver guarantees a compatible incumbent.
        let best = quick.solve(relation)?;
        let best_cost = config.cost.cost(&best);
        stats.improvements += 1;
        if config.trace {
            trace.push(TraceEvent::Improved { cost: best_cost });
        }

        frontier.push(Subproblem {
            relation: relation.clone(),
            depth: 0,
            lower_bound: 0,
        });
        stats.frontier_peak = 1;
        let mut symmetry = SymmetryCache::new();
        if config.use_symmetry {
            symmetry.check_and_insert(relation);
        }
        Ok(Explorer {
            config,
            quick,
            frontier,
            symmetry,
            root: relation.clone(),
            gc_before,
            best,
            best_cost,
            stats,
            trace,
            cancel: None,
            shared_bound: None,
        })
    }

    /// Attaches a cooperative [`CancelToken`]: [`Explorer::run_budget`]
    /// checks it between subproblems and returns
    /// [`ExploreStatus::Cancelled`] once it fires. A single [`step`] call
    /// never observes the token, so the per-node semantics (and batch
    /// fingerprints) are unchanged when no driver ever cancels.
    ///
    /// [`step`]: Explorer::step
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Attaches a [`SharedBound`]: prune checks tighten to
    /// `min(local best, shared)` and every local improvement is published.
    /// The local incumbent *function* still only tracks solutions this
    /// explorer verified itself — a shared cost can prune, but never
    /// replace, the incumbent in hand. Publishes the seed cost immediately
    /// so peers can prune against it.
    pub fn set_shared_bound(&mut self, bound: SharedBound) {
        bound.improve(self.best_cost);
        self.shared_bound = Some(bound);
    }

    /// The bound prune checks compare against: the local incumbent cost,
    /// tightened by the shared cross-thread bound when one is attached.
    fn prune_bound(&self) -> u64 {
        match &self.shared_bound {
            Some(shared) => self.best_cost.min(shared.get()),
            None => self.best_cost,
        }
    }

    /// Explores the next subproblem (consuming any dominance-pruned pops on
    /// the way), or reports exhaustion / budget depletion.
    ///
    /// # Errors
    ///
    /// Propagates [`RelationError::NoSplitPoint`] from [`expand`] (provably
    /// unreachable for well-defined relations).
    pub fn step(&mut self) -> Result<StepOutcome, RelationError> {
        loop {
            if self.frontier.is_empty() {
                self.stats.complete = true;
                return Ok(StepOutcome::Exhausted);
            }
            if let Some(max) = self.config.max_explored {
                if self.stats.explored >= max {
                    // Budget exhausted: stop exploring, keep the incumbent.
                    self.stats.complete = false;
                    return Ok(StepOutcome::BudgetExhausted);
                }
            }
            if let Some(deadline) = self.config.step_deadline {
                if self.stats.explored >= deadline {
                    // Fault-policy truncation: like a blown budget the
                    // incumbent is kept, but reported as a deadline so the
                    // engine can classify the job as degraded.
                    self.stats.complete = false;
                    return Ok(StepOutcome::DeadlineExpired);
                }
            }
            let subproblem = self.frontier.pop().expect("frontier is non-empty");
            brel_obs::event_with(
                brel_obs::Category::Search,
                "frontier_pop",
                "depth",
                subproblem.depth as u64,
            );
            if self.frontier.prunes_dominated() && subproblem.lower_bound >= self.prune_bound() {
                // Dominance: the bound recorded at split time can no longer
                // beat the (since improved) incumbent. Counted and traced
                // separately from candidate-cost prunes — this node was
                // never minimized, so there is no Explored event for it.
                self.stats.pruned_dominated += 1;
                brel_obs::event(brel_obs::Category::Search, "pruned_dominated");
                if self.config.trace {
                    self.trace.push(TraceEvent::PrunedDominated {
                        lower_bound: subproblem.lower_bound,
                        best_cost: self.best_cost,
                    });
                }
                continue;
            }
            return self.explore(subproblem);
        }
    }

    fn explore(&mut self, subproblem: Subproblem) -> Result<StepOutcome, RelationError> {
        let index = self.stats.explored;
        // The per-node span: one `expand` per explored subproblem, tagged
        // with its depth and the bound it carried out of the frontier.
        let _span = brel_obs::span!(
            brel_obs::Category::Search,
            "expand",
            "depth" => subproblem.depth,
            "bound" => subproblem.lower_bound,
            "index" => index,
        );
        self.stats.explored += 1;
        let expansion = expand(
            &self.config.minimizer,
            &self.config.cost,
            &self.quick,
            &subproblem.relation,
            self.prune_bound(),
        )?;
        let candidate_cost = expansion.candidate_cost;
        let compatible = expansion.compatible;
        if self.config.trace {
            self.trace.push(TraceEvent::Explored {
                index,
                candidate_cost,
                compatible,
            });
        }

        // Prune by cost: constraining the relation further cannot beat a
        // candidate obtained with strictly more flexibility.
        if candidate_cost >= self.prune_bound() {
            self.stats.pruned_by_cost += 1;
            brel_obs::event(brel_obs::Category::Search, "pruned_by_cost");
            if self.config.trace {
                self.trace.push(TraceEvent::PrunedByCost {
                    candidate_cost,
                    best_cost: self.best_cost,
                });
            }
            return Ok(StepOutcome::Explored {
                candidate_cost,
                compatible,
                improved: false,
            });
        }

        if compatible {
            self.improve(expansion.candidate, candidate_cost);
            return Ok(StepOutcome::Explored {
                candidate_cost,
                compatible,
                improved: true,
            });
        }

        let mut improved = false;
        if let Some((q, q_cost)) = expansion.quick {
            if q_cost < self.best_cost {
                self.improve(q, q_cost);
                improved = true;
            }
        }

        let split = expansion
            .split
            .expect("expand splits every unpruned incompatible candidate");
        if self.config.trace {
            self.trace.push(TraceEvent::Split {
                vertex: split.vertex.clone(),
                output: split.output,
            });
        }
        self.stats.splits += 1;
        for child in [split.negative, split.positive] {
            debug_assert!(
                child.is_well_defined(),
                "Theorem 5.2 guarantees well-definedness"
            );
            if self.config.use_symmetry
                && subproblem.depth < self.config.symmetry_depth
                && self.symmetry.check_and_insert(&child)
            {
                self.stats.skipped_by_symmetry += 1;
                brel_obs::event(brel_obs::Category::Search, "skipped_by_symmetry");
                if self.config.trace {
                    self.trace.push(TraceEvent::SkippedBySymmetry);
                }
                continue;
            }
            if let Some(cap) = self.config.fifo_capacity {
                if self.frontier.len() >= cap {
                    self.stats.dropped_by_fifo += 1;
                    brel_obs::event(brel_obs::Category::Search, "fifo_drop");
                    continue;
                }
            }
            brel_obs::event_with(
                brel_obs::Category::Search,
                "frontier_push",
                "depth",
                (subproblem.depth + 1) as u64,
            );
            self.frontier.push(Subproblem {
                relation: child,
                depth: subproblem.depth + 1,
                lower_bound: candidate_cost,
            });
            self.stats.frontier_peak = self.stats.frontier_peak.max(self.frontier.len());
        }
        Ok(StepOutcome::Explored {
            candidate_cost,
            compatible,
            improved,
        })
    }

    fn improve(&mut self, function: MultiOutputFunction, cost: u64) {
        self.best = function;
        self.best_cost = cost;
        self.stats.improvements += 1;
        if let Some(shared) = &self.shared_bound {
            shared.improve(cost);
        }
        brel_obs::event_with(brel_obs::Category::Search, "improved", "cost", cost);
        if self.config.trace {
            self.trace.push(TraceEvent::Improved { cost });
        }
    }

    /// Runs until the frontier is exhausted or the configured `max_explored`
    /// budget is spent.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Explorer::step`].
    pub fn run(&mut self) -> Result<ExploreStatus, RelationError> {
        self.run_budget(None)
    }

    /// Runs until exhaustion, the configured `max_explored` budget, or (when
    /// `max_steps` is set) after exploring that many further subproblems —
    /// the anytime knob: pause, inspect [`Explorer::best_cost`], resume.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Explorer::step`].
    pub fn run_budget(&mut self, max_steps: Option<usize>) -> Result<ExploreStatus, RelationError> {
        let mut steps = 0usize;
        loop {
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                return Ok(ExploreStatus::Cancelled);
            }
            if let Some(max) = max_steps {
                if steps >= max {
                    return Ok(ExploreStatus::Paused);
                }
            }
            match self.step()? {
                StepOutcome::Explored { .. } => steps += 1,
                StepOutcome::Exhausted => return Ok(ExploreStatus::Complete),
                StepOutcome::BudgetExhausted => return Ok(ExploreStatus::BudgetExhausted),
                StepOutcome::DeadlineExpired => return Ok(ExploreStatus::DeadlineExpired),
            }
        }
    }

    /// Like [`Explorer::step`], but additionally catches a kernel resource
    /// abort (the [`brel_bdd::ResourceGovernor`]'s cooperative unwind) at
    /// the step boundary and surfaces it as
    /// [`RelationError::ResourceExhausted`]. The explorer must not be
    /// stepped again after that error — the aborted step's subproblem was
    /// consumed — but the shared manager itself is structurally intact.
    ///
    /// # Errors
    ///
    /// Everything [`Explorer::step`] returns, plus
    /// [`RelationError::ResourceExhausted`] on a governor abort.
    pub fn step_guarded(&mut self) -> Result<StepOutcome, RelationError> {
        brel_bdd::catch_resource_abort(|| self.step())
            .unwrap_or_else(|abort| Err(RelationError::ResourceExhausted(abort)))
    }

    /// The best compatible solution found so far.
    pub fn best(&self) -> &MultiOutputFunction {
        &self.best
    }

    /// Cost of the best compatible solution found so far.
    pub fn best_cost(&self) -> u64 {
        self.best_cost
    }

    /// Number of subproblems explored so far.
    pub fn explored(&self) -> usize {
        self.stats.explored
    }

    /// Number of pending subproblems.
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// The strategy of the underlying frontier.
    pub fn strategy(&self) -> SearchStrategy {
        self.frontier.strategy()
    }

    /// The configuration driving this exploration.
    pub fn config(&self) -> &BrelConfig {
        &self.config
    }

    /// Mutable access to the configuration — e.g. raise `max_explored` to
    /// resume a budget-exhausted exploration. Changing `strategy` here has
    /// no effect: the frontier was instantiated at construction.
    pub fn config_mut(&mut self) -> &mut BrelConfig {
        &mut self.config
    }

    /// The exploration statistics so far.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// The trace recorded so far (empty unless `config.trace` is set).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Finalizes the exploration into a [`Solution`], filling the memory
    /// accounting from the manager's lifecycle counters.
    pub fn into_solution(mut self) -> Solution {
        let now = self.root.space().mgr().gc_stats();
        self.stats.peak_live_nodes = now.peak_live_nodes;
        self.stats.gc_collections = now.collections.saturating_sub(self.gc_before.collections);
        Solution {
            function: self.best,
            cost: self.best_cost,
            stats: self.stats,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::BrelSolver;
    use brel_relation::RelationSpace;

    fn fig10() -> (RelationSpace, BooleanRelation) {
        let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
        let r = BooleanRelation::from_table(&space, "00:{00,11}\n01:{10}\n10:{01,10}\n11:{11}")
            .unwrap();
        (space, r)
    }

    #[test]
    fn strategy_names_round_trip_through_parse() {
        for strategy in SearchStrategy::all() {
            assert_eq!(SearchStrategy::parse(strategy.name()), Some(strategy));
            assert_eq!(format!("{strategy}"), strategy.name());
        }
        assert_eq!(
            SearchStrategy::parse("best_first"),
            Some(SearchStrategy::BestFirst)
        );
        assert_eq!(SearchStrategy::parse("nope"), None);
        assert_eq!(SearchStrategy::default(), SearchStrategy::Fifo);
    }

    #[test]
    fn frontiers_implement_their_orders() {
        let (_space, r) = fig10();
        let sp = |bound: u64| Subproblem {
            relation: r.clone(),
            depth: 0,
            lower_bound: bound,
        };
        let mut fifo = FifoFrontier::default();
        let mut dfs = DfsFrontier::default();
        let mut best = BestFirstFrontier::default();
        for bound in [5u64, 3, 9, 3] {
            fifo.push(sp(bound));
            dfs.push(sp(bound));
            best.push(sp(bound));
        }
        let drain = |f: &mut dyn Frontier| {
            let mut bounds = Vec::new();
            while let Some(s) = f.pop() {
                bounds.push(s.lower_bound);
            }
            bounds
        };
        assert_eq!(drain(&mut fifo), vec![5, 3, 9, 3]);
        assert_eq!(drain(&mut dfs), vec![3, 9, 3, 5]);
        // Lowest bound first, insertion order among the two 3s.
        assert_eq!(drain(&mut best), vec![3, 3, 5, 9]);
        assert!(fifo.is_empty() && dfs.is_empty() && best.is_empty());
        assert!(!fifo.prunes_dominated());
        assert!(!dfs.prunes_dominated());
        assert!(best.prunes_dominated());
    }

    #[test]
    fn every_strategy_finds_the_fig10_optimum_in_exact_mode() {
        let (_space, r) = fig10();
        for strategy in SearchStrategy::all() {
            let config = BrelConfig::exact().with_strategy(strategy);
            let solution = BrelSolver::new(config).solve(&r).unwrap();
            assert!(r.is_compatible(&solution.function));
            assert_eq!(solution.cost, 2, "{strategy} missed the optimum");
            assert!(solution.stats.complete);
            assert!(solution.stats.frontier_peak >= 1);
        }
    }

    #[test]
    fn best_first_explores_no_more_than_fifo_on_fig10() {
        let (_space, r) = fig10();
        let fifo = BrelSolver::new(BrelConfig::exact()).solve(&r).unwrap();
        let best = BrelSolver::new(BrelConfig::exact().with_strategy(SearchStrategy::BestFirst))
            .solve(&r)
            .unwrap();
        assert_eq!(fifo.cost, best.cost);
        assert!(
            best.stats.explored <= fifo.stats.explored,
            "best-first explored {} > fifo {}",
            best.stats.explored,
            fifo.stats.explored
        );
    }

    #[test]
    fn explorer_is_anytime_pause_and_resume() {
        let (_space, r) = fig10();
        let mut explorer = Explorer::new(
            BrelConfig::exact().with_strategy(SearchStrategy::BestFirst),
            &r,
        )
        .unwrap();
        // The quick seed is available before any step.
        let seeded = explorer.best_cost();
        assert!(r.is_compatible(explorer.best()));
        // One step at a time, the incumbent never regresses.
        let mut last = seeded;
        let mut paused = 0;
        loop {
            match explorer.run_budget(Some(1)).unwrap() {
                ExploreStatus::Paused => {
                    paused += 1;
                    assert!(explorer.best_cost() <= last);
                    last = explorer.best_cost();
                }
                ExploreStatus::Complete => break,
                ExploreStatus::BudgetExhausted
                | ExploreStatus::DeadlineExpired
                | ExploreStatus::Cancelled => {
                    unreachable!("exact mode has no budget, deadline or token")
                }
            }
        }
        assert!(paused >= 1, "fig10 needs more than one exploration");
        assert_eq!(explorer.strategy(), SearchStrategy::BestFirst);
        assert_eq!(explorer.frontier_len(), 0);
        let solution = explorer.into_solution();
        assert_eq!(solution.cost, 2);
        assert!(solution.stats.complete);
    }

    #[test]
    fn budget_exhaustion_is_resumable_by_raising_the_budget() {
        let (_space, r) = fig10();
        let mut explorer = Explorer::new(
            BrelConfig::default()
                .with_max_explored(Some(1))
                .with_fifo_capacity(None),
            &r,
        )
        .unwrap();
        assert_eq!(explorer.run().unwrap(), ExploreStatus::BudgetExhausted);
        assert_eq!(explorer.explored(), 1);
        assert!(!explorer.stats().complete);
        assert!(
            explorer.frontier_len() > 0,
            "pending work survives the pause"
        );
        // The frontier is intact: a fresh solver with a bigger budget would
        // re-explore, but this explorer resumes where it stopped.
        explorer.config_mut().max_explored = None;
        assert_eq!(explorer.run().unwrap(), ExploreStatus::Complete);
        let solution = explorer.into_solution();
        assert_eq!(solution.cost, 2);
        assert!(solution.stats.complete);
    }

    #[test]
    fn expand_is_pure_per_node() {
        let (_space, r) = fig10();
        let minimizer = IsfMinimizer::default();
        let cost = CostFn::SumBddSize;
        let quick = QuickSolver::new();
        let a = expand(&minimizer, &cost, &quick, &r, u64::MAX).unwrap();
        let b = expand(&minimizer, &cost, &quick, &r, u64::MAX).unwrap();
        assert_eq!(a.candidate_cost, b.candidate_cost);
        assert_eq!(a.compatible, b.compatible);
        assert!(!a.compatible, "fig10's first candidate conflicts");
        let (sa, sb) = (a.split.unwrap(), b.split.unwrap());
        assert_eq!(sa.vertex, sb.vertex);
        assert_eq!(sa.output, sb.output);
        assert_eq!(sa.negative, sb.negative);
        assert_eq!(sa.positive, sb.positive);
        // A prune bound at or below the candidate cost suppresses the split.
        let pruned = expand(&minimizer, &cost, &quick, &r, a.candidate_cost).unwrap();
        assert!(pruned.split.is_none() && pruned.quick.is_none());
    }

    #[test]
    fn cancel_token_stops_run_budget_at_the_step_boundary() {
        let (_space, r) = fig10();
        let mut explorer = Explorer::new(BrelConfig::exact(), &r).unwrap();
        let token = CancelToken::new();
        explorer.set_cancel_token(token.clone());
        assert!(!token.is_cancelled());
        // An uncancelled token never perturbs the search.
        assert_eq!(explorer.run_budget(Some(1)).unwrap(), ExploreStatus::Paused);
        assert_eq!(explorer.explored(), 1);
        // Cancel: the next run returns immediately, incumbent and frontier
        // intact.
        token.cancel();
        assert!(token.is_cancelled());
        let before = explorer.explored();
        assert_eq!(explorer.run().unwrap(), ExploreStatus::Cancelled);
        assert_eq!(explorer.explored(), before, "no step after cancellation");
        assert!(r.is_compatible(explorer.best()));
        // The incumbent survives into the final solution.
        let cancelled_cost = explorer.best_cost();
        let solution = explorer.into_solution();
        assert_eq!(solution.cost, cancelled_cost);
        assert!(!solution.stats.complete);
    }

    #[test]
    fn shared_bound_is_a_monotone_atomic_min() {
        let bound = SharedBound::new();
        assert_eq!(bound.get(), u64::MAX);
        assert!(bound.improve(10));
        assert!(!bound.improve(10), "equal cost is not an improvement");
        assert!(!bound.improve(12), "the bound never regresses");
        assert_eq!(bound.get(), 10);
        // Clones share the cell in both directions.
        let peer = bound.clone();
        assert!(peer.improve(7));
        assert_eq!(bound.get(), 7);
    }

    #[test]
    fn shared_bound_tightens_explorer_pruning_and_publishes_improvements() {
        let (_space, r) = fig10();
        // Reference: an unshared exact best-first run.
        let alone = BrelSolver::new(BrelConfig::exact().with_strategy(SearchStrategy::BestFirst))
            .solve(&r)
            .unwrap();
        assert_eq!(alone.cost, 2);

        // A peer holding a cost-1 incumbent prunes this explorer's whole
        // search down to one bound check: no candidate can beat the bound,
        // so the root is cost-pruned and nothing ever splits.
        let bound = SharedBound::new();
        bound.improve(1);
        let mut explorer = Explorer::new(
            BrelConfig::exact().with_strategy(SearchStrategy::BestFirst),
            &r,
        )
        .unwrap();
        explorer.set_shared_bound(bound.clone());
        assert_eq!(explorer.run().unwrap(), ExploreStatus::Complete);
        let bounded = explorer.into_solution();
        assert!(
            bounded.stats.explored < alone.stats.explored,
            "a shared incumbent must prune ({} >= {})",
            bounded.stats.explored,
            alone.stats.explored
        );
        assert_eq!(bounded.stats.splits, 0, "every candidate is bound-pruned");

        // The reverse direction: local improvements are published, so the
        // bound ends at the optimum after an unassisted run.
        let fresh = SharedBound::new();
        let mut explorer = Explorer::new(
            BrelConfig::exact().with_strategy(SearchStrategy::BestFirst),
            &r,
        )
        .unwrap();
        explorer.set_shared_bound(fresh.clone());
        let seed_cost = explorer.best_cost();
        assert_eq!(fresh.get(), seed_cost, "attaching publishes the seed");
        assert_eq!(explorer.run().unwrap(), ExploreStatus::Complete);
        let published = explorer.into_solution();
        assert_eq!(published.cost, 2);
        assert_eq!(fresh.get(), 2);
    }

    #[test]
    fn an_unattached_shared_bound_changes_nothing() {
        let (_space, r) = fig10();
        let config = BrelConfig::exact().with_strategy(SearchStrategy::BestFirst);
        let plain = BrelSolver::new(config.clone()).solve(&r).unwrap();
        let mut explorer = Explorer::new(config, &r).unwrap();
        explorer.set_shared_bound(SharedBound::new());
        explorer.run().unwrap();
        let shared = explorer.into_solution();
        // A bound nobody else feeds is exactly the local incumbent: the
        // exploration is step-for-step identical.
        assert_eq!(shared.cost, plain.cost);
        assert_eq!(shared.stats.explored, plain.stats.explored);
        assert_eq!(shared.stats.splits, plain.stats.splits);
        assert_eq!(shared.stats.pruned_dominated, plain.stats.pruned_dominated);
    }
}
