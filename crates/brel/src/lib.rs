//! # brel-core
//!
//! The BREL solver: the recursive branch-and-bound algorithm for solving
//! Boolean relations described in "A Recursive Paradigm to Solve Boolean
//! Relations" (Baneres, Cortadella, Kishinevsky; DAC 2004 / IEEE TC 2009).
//!
//! The solver reduces the binate covering problem of solving a Boolean
//! relation to a sequence of unate problems: it over-approximates the
//! relation by a multiple-output ISF, minimizes each output independently,
//! and — when the minimized function conflicts with the relation — splits
//! the relation at a conflicting vertex and recurses on the two smaller
//! relations (Sections 5–7 of the paper).
//!
//! The crate provides:
//!
//! * [`QuickSolver`] — the naive output-by-output solver of Fig. 4, used to
//!   seed the branch-and-bound with a guaranteed compatible solution;
//! * [`BrelSolver`] — the recursive solver of Fig. 6 with the partial-BFS
//!   exploration, cost-based pruning and symmetry pruning of Section 7;
//! * the [`search`] core it is built on — pluggable [`Frontier`]s
//!   ([`SearchStrategy::Fifo`]/[`SearchStrategy::Dfs`]/
//!   [`SearchStrategy::BestFirst`] with dominance pruning) and the
//!   incremental, anytime [`Explorer`] (step/pause/resume on budgets);
//! * customizable [`cost`] functions (sum of BDD sizes, sum of squares,
//!   cube/literal counts, arbitrary closures);
//! * the ISF minimization strategies compared in Table 1
//!   ([`IsfMinimizer`]);
//! * a Boolean-equation system front end ([`BooleanSystem`], Section 8).
//!
//! ```
//! use brel_relation::{BooleanRelation, RelationSpace};
//! use brel_core::{BrelSolver, BrelConfig};
//!
//! // The relation of Fig. 1a cannot be expressed with don't cares…
//! let space = RelationSpace::new(2, 2);
//! let r = BooleanRelation::from_table(
//!     &space,
//!     "00:{00}\n01:{00}\n10:{00,11}\n11:{10,11}",
//! ).unwrap();
//! // …but BREL finds a compatible multiple-output function.
//! let solution = BrelSolver::new(BrelConfig::default()).solve(&r).unwrap();
//! assert!(r.is_compatible(&solution.function));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
mod equation;
mod minimize_isf;
mod quick;
pub mod search;
mod solver;
mod symmetry;

pub use cost::{CostFn, CostFunction};
pub use equation::{BooleanSystem, Equation, EquationOperator};
pub use minimize_isf::{IsfMinimizer, MinimizerKind};
pub use quick::QuickSolver;
pub use search::{
    expand, BestFirstFrontier, CancelToken, DfsFrontier, Expansion, ExploreStatus, Explorer,
    FifoFrontier, Frontier, SearchStrategy, SharedBound, SplitExpansion, StepOutcome, Subproblem,
};
pub use solver::{BrelConfig, BrelSolver, Solution, SolveStats, TraceEvent};
pub use symmetry::{canonical_rows, input_support_mask, relation_fingerprint, SymmetryCache};
