//! The recursive BREL solver (Fig. 6 of the paper) with the partial
//! breadth-first exploration, cost pruning and symmetry pruning of Section 7.
//!
//! The solver maintains a bounded FIFO of pending subrelations. For each
//! subrelation it:
//!
//! 1. projects the relation onto each output and minimizes the resulting
//!    MISF output by output (a unate problem),
//! 2. prunes the branch if the minimized candidate already costs at least as
//!    much as the best known compatible solution,
//! 3. accepts the candidate if it is compatible with the subrelation,
//! 4. otherwise selects a conflicting input vertex (largest conflict cube)
//!    and an output with `{0,1}` flexibility there, splits the subrelation
//!    in two (Definition 5.4) and enqueues both halves.
//!
//! The quick solver is run on every explored subrelation so that a
//! compatible solution is always available even if the FIFO bound or the
//! exploration budget truncates the search (Section 7.6).

use std::collections::VecDeque;

use brel_bdd::GcStats;
use brel_relation::{BooleanRelation, MultiOutputFunction, RelationError};

use crate::cost::{CostFn, CostFunction};
use crate::minimize_isf::IsfMinimizer;
use crate::quick::QuickSolver;
use crate::symmetry::SymmetryCache;

/// Configuration of the BREL solver.
#[derive(Debug)]
pub struct BrelConfig {
    /// The cost function to minimize (default: sum of BDD sizes).
    pub cost: CostFn,
    /// The ISF minimization strategy (default: ISOP with non-essential
    /// variable elimination).
    pub minimizer: IsfMinimizer,
    /// Maximum number of subrelations explored (the paper uses 10 for the
    /// Table 2 runs and 200 for the decomposition flow). `None` means
    /// unbounded (exact mode if the FIFO is also unbounded).
    pub max_explored: Option<usize>,
    /// Capacity of the FIFO of pending subrelations. `None` means unbounded.
    pub fifo_capacity: Option<usize>,
    /// Enable output-symmetry pruning (Section 7.7).
    pub use_symmetry: bool,
    /// Only check symmetries for subrelations created within this depth from
    /// the root (the paper limits the check to the initial recursions).
    pub symmetry_depth: usize,
    /// Record a step-by-step trace of the exploration.
    pub trace: bool,
}

impl Default for BrelConfig {
    fn default() -> Self {
        BrelConfig {
            cost: CostFn::SumBddSize,
            minimizer: IsfMinimizer::default(),
            max_explored: Some(10),
            fifo_capacity: Some(64),
            use_symmetry: false,
            symmetry_depth: 4,
            trace: false,
        }
    }
}

impl BrelConfig {
    /// An exact configuration: unbounded exploration and FIFO. Only
    /// practical for small relations.
    pub fn exact() -> Self {
        BrelConfig {
            max_explored: None,
            fifo_capacity: None,
            ..BrelConfig::default()
        }
    }

    /// The heuristic configuration used for the paper's Table 2 runs:
    /// sum-of-BDD-sizes cost, exploration limited to 10 subrelations.
    pub fn table2() -> Self {
        BrelConfig::default()
    }

    /// The heuristic configuration used for the decomposition experiments of
    /// Table 3: exploration limited to 200 subrelations.
    pub fn decomposition(delay_oriented: bool) -> Self {
        BrelConfig {
            cost: if delay_oriented {
                CostFn::SumSquaredBddSize
            } else {
                CostFn::SumBddSize
            },
            max_explored: Some(200),
            ..BrelConfig::default()
        }
    }

    /// Sets the cost function.
    pub fn with_cost(mut self, cost: CostFn) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the exploration budget.
    pub fn with_max_explored(mut self, max: Option<usize>) -> Self {
        self.max_explored = max;
        self
    }

    /// Enables or disables symmetry pruning.
    pub fn with_symmetry(mut self, enable: bool) -> Self {
        self.use_symmetry = enable;
        self
    }

    /// Enables trace recording.
    pub fn with_trace(mut self, enable: bool) -> Self {
        self.trace = enable;
        self
    }
}

/// One step of the recorded exploration trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A subrelation was popped from the FIFO and its MISF minimized; the
    /// payload is the cost of the candidate function.
    Explored {
        /// Index of the explored subrelation (0 = the original relation).
        index: usize,
        /// Cost of the MISF-minimized candidate.
        candidate_cost: u64,
        /// Whether the candidate was compatible with the subrelation.
        compatible: bool,
    },
    /// A new best compatible solution was recorded.
    Improved {
        /// Cost of the new best solution.
        cost: u64,
    },
    /// A branch was pruned because its candidate cost could not improve on
    /// the best known solution.
    PrunedByCost {
        /// Cost of the rejected candidate.
        candidate_cost: u64,
        /// Cost of the best solution at that time.
        best_cost: u64,
    },
    /// A split was performed at the given input vertex and output index.
    Split {
        /// The conflicting input vertex chosen (§7.4).
        vertex: Vec<bool>,
        /// The output chosen for the split.
        output: usize,
    },
    /// A subrelation was skipped because a symmetric variant had already
    /// been explored.
    SkippedBySymmetry,
}

/// Statistics of one solver run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of subrelations whose MISF was minimized.
    pub explored: usize,
    /// Number of splits performed.
    pub splits: usize,
    /// Number of branches pruned by the cost bound.
    pub pruned_by_cost: usize,
    /// Number of subrelations skipped by symmetry pruning.
    pub skipped_by_symmetry: usize,
    /// Number of subrelations dropped because the FIFO was full.
    pub dropped_by_fifo: usize,
    /// Number of times the incumbent solution was improved.
    pub improvements: usize,
    /// `true` if the search ran to completion (empty FIFO) rather than
    /// hitting the exploration budget.
    pub complete: bool,
    /// High-water mark of live BDD nodes in the relation's shared manager
    /// over this solve (the manager's peak gauge is re-based at solve
    /// entry) — the memory bound of the exploration. The FIFO of pending
    /// subrelations keeps its characteristic functions rooted (they are
    /// `Bdd` handles), so this is the frontier + incumbent footprint the
    /// kernel's GC cannot reclaim, on top of whatever was live before the
    /// solve started.
    pub peak_live_nodes: u64,
    /// Garbage collections the kernel ran during this solve.
    pub gc_collections: u64,
}

/// The result of a solver run: the best compatible function found, its cost
/// and the exploration statistics.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The best compatible multiple-output function found.
    pub function: MultiOutputFunction,
    /// Its cost under the configured cost function.
    pub cost: u64,
    /// Exploration statistics.
    pub stats: SolveStats,
    /// The exploration trace (empty unless [`BrelConfig::trace`] is set).
    pub trace: Vec<TraceEvent>,
}

/// The recursive branch-and-bound Boolean-relation solver.
#[derive(Debug, Default)]
pub struct BrelSolver {
    config: BrelConfig,
}

impl BrelSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: BrelConfig) -> Self {
        BrelSolver { config }
    }

    /// The configuration of this solver.
    pub fn config(&self) -> &BrelConfig {
        &self.config
    }

    /// Solves the relation: returns the best compatible multiple-output
    /// function found within the configured budgets.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::NotWellDefined`] if the relation is not well
    /// defined (no compatible function exists).
    pub fn solve(&self, relation: &BooleanRelation) -> Result<Solution, RelationError> {
        if !relation.is_well_defined() {
            return Err(RelationError::NotWellDefined);
        }
        relation.space().mgr().reset_peak_live_nodes();
        let gc_before = relation.space().mgr().gc_stats();
        let mut stats = SolveStats::default();
        let mut trace = Vec::new();
        let quick = QuickSolver::new().with_minimizer(self.config.minimizer);

        // Seed: the quick solver guarantees a compatible incumbent.
        let mut best = quick.solve(relation)?;
        let mut best_cost = self.config.cost.cost(&best);
        stats.improvements += 1;
        if self.config.trace {
            trace.push(TraceEvent::Improved { cost: best_cost });
        }

        let mut fifo: VecDeque<(BooleanRelation, usize)> = VecDeque::new();
        fifo.push_back((relation.clone(), 0));
        let mut symmetry = SymmetryCache::new();
        if self.config.use_symmetry {
            symmetry.check_and_insert(relation);
        }

        let mut explored = 0usize;
        while let Some((current, depth)) = fifo.pop_front() {
            if let Some(max) = self.config.max_explored {
                if explored >= max {
                    // Budget exhausted: stop exploring, keep the incumbent.
                    stats.complete = false;
                    Self::account_memory(&mut stats, &gc_before, relation);
                    return Ok(self.finish(best, best_cost, stats, trace));
                }
            }
            explored += 1;
            stats.explored += 1;

            // Step (a)+(b): over-approximate by the MISF and minimize it.
            let misf = current.to_misf();
            let candidate_outputs: Vec<_> = misf
                .outputs()
                .iter()
                .map(|isf| self.config.minimizer.minimize(isf))
                .collect();
            let candidate = MultiOutputFunction::new(current.space(), candidate_outputs)?;
            let candidate_cost = self.config.cost.cost(&candidate);
            let compatible = current.is_compatible(&candidate);
            if self.config.trace {
                trace.push(TraceEvent::Explored {
                    index: explored - 1,
                    candidate_cost,
                    compatible,
                });
            }

            // Step: prune by cost. Constraining the relation further cannot
            // beat a candidate obtained with strictly more flexibility.
            if candidate_cost >= best_cost {
                stats.pruned_by_cost += 1;
                if self.config.trace {
                    trace.push(TraceEvent::PrunedByCost {
                        candidate_cost,
                        best_cost,
                    });
                }
                continue;
            }

            if compatible {
                best = candidate;
                best_cost = candidate_cost;
                stats.improvements += 1;
                if self.config.trace {
                    trace.push(TraceEvent::Improved { cost: best_cost });
                }
                continue;
            }

            // Incompatible: make sure this subrelation still contributes a
            // compatible incumbent (partial-BFS guarantee of §7.2)…
            if let Ok(q) = quick.solve(&current) {
                let q_cost = self.config.cost.cost(&q);
                if q_cost < best_cost {
                    best = q;
                    best_cost = q_cost;
                    stats.improvements += 1;
                    if self.config.trace {
                        trace.push(TraceEvent::Improved { cost: best_cost });
                    }
                }
            }

            // …then split on a conflicting vertex and enqueue both halves.
            let conflicts = current.conflicting_inputs(&candidate);
            let Some((vertex, output)) = current.select_split_point(&conflicts) else {
                // No valid split point (should not happen for incompatible
                // candidates, but stay safe): keep the quick solution.
                continue;
            };
            if self.config.trace {
                trace.push(TraceEvent::Split {
                    vertex: vertex.clone(),
                    output,
                });
            }
            let (r_neg, r_pos) = current.split(&vertex, output)?;
            stats.splits += 1;
            for child in [r_neg, r_pos] {
                debug_assert!(
                    child.is_well_defined(),
                    "Theorem 5.2 guarantees well-definedness"
                );
                if self.config.use_symmetry
                    && depth < self.config.symmetry_depth
                    && symmetry.check_and_insert(&child)
                {
                    stats.skipped_by_symmetry += 1;
                    if self.config.trace {
                        trace.push(TraceEvent::SkippedBySymmetry);
                    }
                    continue;
                }
                if let Some(cap) = self.config.fifo_capacity {
                    if fifo.len() >= cap {
                        stats.dropped_by_fifo += 1;
                        continue;
                    }
                }
                fifo.push_back((child, depth + 1));
            }
        }
        stats.complete = true;
        Self::account_memory(&mut stats, &gc_before, relation);
        Ok(self.finish(best, best_cost, stats, trace))
    }

    /// Fills the node-budget accounting of one solve from the manager's
    /// lifecycle counters (deterministic, like the rest of the stats).
    fn account_memory(stats: &mut SolveStats, before: &GcStats, relation: &BooleanRelation) {
        let now = relation.space().mgr().gc_stats();
        stats.peak_live_nodes = now.peak_live_nodes;
        stats.gc_collections = now.collections.saturating_sub(before.collections);
    }

    fn finish(
        &self,
        function: MultiOutputFunction,
        cost: u64,
        stats: SolveStats,
        trace: Vec<TraceEvent>,
    ) -> Solution {
        Solution {
            function,
            cost,
            stats,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brel_relation::RelationSpace;

    fn fig1(space: &RelationSpace) -> BooleanRelation {
        BooleanRelation::from_table(space, "00:{00}\n01:{00}\n10:{00,11}\n11:{10,11}").unwrap()
    }

    #[test]
    fn solves_fig1_with_a_compatible_function() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let sol = BrelSolver::new(BrelConfig::default()).solve(&r).unwrap();
        assert!(r.is_compatible(&sol.function));
        assert!(sol.stats.explored >= 1);
        assert_eq!(sol.cost, CostFn::SumBddSize.cost(&sol.function));
    }

    #[test]
    fn rejects_ill_defined_relation() {
        let space = RelationSpace::new(1, 1);
        let r = BooleanRelation::from_table(&space, "1 : {1}").unwrap();
        assert!(matches!(
            BrelSolver::default().solve(&r),
            Err(RelationError::NotWellDefined)
        ));
    }

    #[test]
    fn exact_mode_finds_the_optimum_on_fig10() {
        // Fig. 10 / Section 9.1: the best solution is (x ⇔ b)(y ⇔ a) with
        // two single-literal outputs, while the quick initial solution is the
        // unbalanced (x ⇔ 1)(y ⇔ ab + a'b'). BREL in exact mode must escape
        // that local minimum and find the cost-2 solution.
        let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
        let r = BooleanRelation::from_table(
            &space,
            "00 : {00, 11}\n01 : {10}\n10 : {01, 10}\n11 : {11}",
        )
        .unwrap();
        let sol = BrelSolver::new(BrelConfig::exact()).solve(&r).unwrap();
        assert!(r.is_compatible(&sol.function));
        assert_eq!(sol.cost, 2, "both outputs should be single literals");
        assert!(sol.stats.complete);
        assert_eq!(sol.function.output(0), &space.input(1), "x ⇔ b");
        assert_eq!(sol.function.output(1), &space.input(0), "y ⇔ a");
    }

    #[test]
    fn fig7_example_is_solved_with_one_split() {
        // Fig. 7: R(a, b, c; x, y); the first MISF minimization conflicts on
        // vertices 010 and 101 and one split resolves it.
        let space = RelationSpace::with_names(&["a", "b", "c"], &["x", "y"]);
        let r = BooleanRelation::from_table(
            &space,
            "000 : {00, 10}\n001 : {01, 10}\n010 : {01, 10}\n011 : {11}\n100 : {00, 10}\n101 : {01, 10}\n110 : {11}\n111 : {01, 11}",
        )
        .unwrap();
        let config = BrelConfig::exact().with_trace(true);
        let sol = BrelSolver::new(config).solve(&r).unwrap();
        assert!(r.is_compatible(&sol.function));
        assert!(sol.stats.splits >= 1);
        assert!(sol
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Split { .. })));
    }

    #[test]
    fn budget_of_one_still_returns_a_solution() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let config = BrelConfig::default().with_max_explored(Some(1));
        let sol = BrelSolver::new(config).solve(&r).unwrap();
        assert!(r.is_compatible(&sol.function));
    }

    #[test]
    fn symmetry_pruning_reduces_exploration() {
        // A relation with two fully symmetric outputs.
        let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
        let r = BooleanRelation::from_table(
            &space,
            "00 : {01, 10}\n01 : {01, 10}\n10 : {01, 10}\n11 : {11}",
        )
        .unwrap();
        let without = BrelSolver::new(BrelConfig::exact().with_symmetry(false))
            .solve(&r)
            .unwrap();
        let with = BrelSolver::new(BrelConfig::exact().with_symmetry(true))
            .solve(&r)
            .unwrap();
        assert!(r.is_compatible(&without.function));
        assert!(r.is_compatible(&with.function));
        assert_eq!(
            without.cost, with.cost,
            "symmetry pruning must not change quality"
        );
        assert!(with.stats.explored <= without.stats.explored);
    }

    #[test]
    fn functional_relation_short_circuits() {
        let space = RelationSpace::new(2, 1);
        let a = space.input(0);
        let b = space.input(1);
        let f = MultiOutputFunction::new(&space, vec![a.iff(&b)]).unwrap();
        let r = BooleanRelation::from_function(&f);
        let sol = BrelSolver::default().solve(&r).unwrap();
        assert_eq!(sol.function.output(0), f.output(0));
        assert_eq!(sol.stats.splits, 0);
    }

    #[test]
    fn custom_cost_function_is_respected() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let config = BrelConfig::exact().with_cost(CostFn::LiteralCount);
        let sol = BrelSolver::new(config).solve(&r).unwrap();
        assert!(r.is_compatible(&sol.function));
        assert_eq!(sol.cost, CostFn::LiteralCount.cost(&sol.function));
    }

    #[test]
    fn brel_strictly_beats_the_quick_solver_on_fig10() {
        let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
        let r = BooleanRelation::from_table(
            &space,
            "00 : {00, 11}\n01 : {10}\n10 : {01, 10}\n11 : {11}",
        )
        .unwrap();
        let quick = QuickSolver::new().solve(&r).unwrap();
        let quick_cost = CostFn::SumBddSize.cost(&quick);
        let sol = BrelSolver::new(BrelConfig::exact()).solve(&r).unwrap();
        assert!(
            sol.cost < quick_cost,
            "the branch-and-bound must escape the quick solver's local minimum"
        );
    }
}
