//! The recursive BREL solver (Fig. 6 of the paper) with the partial
//! breadth-first exploration, cost pruning and symmetry pruning of Section 7.
//!
//! The solver delegates to the strategy-driven search core of
//! [`crate::search`]: pending subrelations flow through a pluggable
//! [`crate::search::Frontier`] (FIFO by default — the paper's partial-BFS
//! order) and an incremental [`crate::search::Explorer`]. For each explored
//! subrelation the core:
//!
//! 1. projects the relation onto each output and minimizes the resulting
//!    MISF output by output (a unate problem),
//! 2. prunes the branch if the minimized candidate already costs at least as
//!    much as the best known compatible solution,
//! 3. accepts the candidate if it is compatible with the subrelation,
//! 4. otherwise selects a conflicting input vertex (largest conflict cube)
//!    and an output with `{0,1}` flexibility there, splits the subrelation
//!    in two (Definition 5.4) and enqueues both halves.
//!
//! The quick solver is run on every explored subrelation so that a
//! compatible solution is always available even if the frontier bound or
//! the exploration budget truncates the search (Section 7.6).

use brel_relation::{BooleanRelation, MultiOutputFunction, RelationError};

use crate::cost::CostFn;
use crate::minimize_isf::IsfMinimizer;
use crate::search::{Explorer, SearchStrategy};

/// Configuration of the BREL solver. Clonable, so engine backends can be
/// stamped out from one template instead of rebuilding configs field by
/// field.
#[derive(Debug, Clone)]
pub struct BrelConfig {
    /// The cost function to minimize (default: sum of BDD sizes).
    pub cost: CostFn,
    /// The ISF minimization strategy (default: ISOP with non-essential
    /// variable elimination).
    pub minimizer: IsfMinimizer,
    /// The frontier discipline of the exploration (default: FIFO, the
    /// paper's partial-BFS order).
    pub strategy: SearchStrategy,
    /// Maximum number of subrelations explored (the paper uses 10 for the
    /// Table 2 runs and 200 for the decomposition flow). `None` means
    /// unbounded (exact mode if the frontier is also unbounded).
    pub max_explored: Option<usize>,
    /// Capacity of the frontier of pending subrelations (historically the
    /// FIFO bound, applied to every strategy). `None` means unbounded.
    pub fifo_capacity: Option<usize>,
    /// Fault-policy truncation: stop after this many explored subrelations
    /// and report [`crate::search::StepOutcome::DeadlineExpired`]. Unlike
    /// `max_explored` (a quality knob), hitting this deadline marks the
    /// result as degraded. `None` (the default) means no deadline.
    pub step_deadline: Option<usize>,
    /// Enable output-symmetry pruning (Section 7.7).
    pub use_symmetry: bool,
    /// Only check symmetries for subrelations created within this depth from
    /// the root (the paper limits the check to the initial recursions).
    pub symmetry_depth: usize,
    /// Record a step-by-step trace of the exploration.
    pub trace: bool,
}

impl Default for BrelConfig {
    fn default() -> Self {
        BrelConfig {
            cost: CostFn::SumBddSize,
            minimizer: IsfMinimizer::default(),
            strategy: SearchStrategy::Fifo,
            max_explored: Some(10),
            fifo_capacity: Some(64),
            step_deadline: None,
            use_symmetry: false,
            symmetry_depth: 4,
            trace: false,
        }
    }
}

impl BrelConfig {
    /// An exact configuration: unbounded exploration and FIFO. Only
    /// practical for small relations.
    pub fn exact() -> Self {
        BrelConfig {
            max_explored: None,
            fifo_capacity: None,
            ..BrelConfig::default()
        }
    }

    /// The heuristic configuration used for the paper's Table 2 runs:
    /// sum-of-BDD-sizes cost, exploration limited to 10 subrelations.
    pub fn table2() -> Self {
        BrelConfig::default()
    }

    /// The heuristic configuration used for the decomposition experiments of
    /// Table 3: exploration limited to 200 subrelations.
    pub fn decomposition(delay_oriented: bool) -> Self {
        BrelConfig {
            cost: if delay_oriented {
                CostFn::SumSquaredBddSize
            } else {
                CostFn::SumBddSize
            },
            max_explored: Some(200),
            ..BrelConfig::default()
        }
    }

    /// Sets the cost function.
    pub fn with_cost(mut self, cost: CostFn) -> Self {
        self.cost = cost;
        self
    }

    /// Sets the ISF minimization strategy.
    pub fn with_minimizer(mut self, minimizer: IsfMinimizer) -> Self {
        self.minimizer = minimizer;
        self
    }

    /// Sets the frontier discipline of the exploration.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the exploration budget.
    pub fn with_max_explored(mut self, max: Option<usize>) -> Self {
        self.max_explored = max;
        self
    }

    /// Sets the capacity of the frontier of pending subrelations.
    pub fn with_fifo_capacity(mut self, capacity: Option<usize>) -> Self {
        self.fifo_capacity = capacity;
        self
    }

    /// Sets the fault-policy step deadline (see
    /// [`BrelConfig::step_deadline`]).
    pub fn with_step_deadline(mut self, deadline: Option<usize>) -> Self {
        self.step_deadline = deadline;
        self
    }

    /// Enables or disables symmetry pruning.
    pub fn with_symmetry(mut self, enable: bool) -> Self {
        self.use_symmetry = enable;
        self
    }

    /// Sets the depth limit of the symmetry check.
    pub fn with_symmetry_depth(mut self, depth: usize) -> Self {
        self.symmetry_depth = depth;
        self
    }

    /// Enables trace recording.
    pub fn with_trace(mut self, enable: bool) -> Self {
        self.trace = enable;
        self
    }
}

/// One step of the recorded exploration trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A subrelation was popped from the FIFO and its MISF minimized; the
    /// payload is the cost of the candidate function.
    Explored {
        /// Index of the explored subrelation (0 = the original relation).
        index: usize,
        /// Cost of the MISF-minimized candidate.
        candidate_cost: u64,
        /// Whether the candidate was compatible with the subrelation.
        compatible: bool,
    },
    /// A new best compatible solution was recorded.
    Improved {
        /// Cost of the new best solution.
        cost: u64,
    },
    /// A branch was pruned because its candidate cost could not improve on
    /// the best known solution.
    PrunedByCost {
        /// Cost of the rejected candidate.
        candidate_cost: u64,
        /// Cost of the best solution at that time.
        best_cost: u64,
    },
    /// A pending subproblem was dropped at pop time because its inherited
    /// lower bound could no longer beat the incumbent (best-first dominance
    /// pruning). Unlike [`TraceEvent::PrunedByCost`] the node was never
    /// minimized, so no [`TraceEvent::Explored`] precedes this event.
    PrunedDominated {
        /// The subproblem's inherited lower bound.
        lower_bound: u64,
        /// Cost of the best solution at that time.
        best_cost: u64,
    },
    /// A split was performed at the given input vertex and output index.
    Split {
        /// The conflicting input vertex chosen (§7.4).
        vertex: Vec<bool>,
        /// The output chosen for the split.
        output: usize,
    },
    /// A subrelation was skipped because a symmetric variant had already
    /// been explored.
    SkippedBySymmetry,
}

/// Statistics of one solver run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Number of subrelations whose MISF was minimized.
    pub explored: usize,
    /// Number of splits performed.
    pub splits: usize,
    /// Number of explored branches pruned by the cost bound (their
    /// minimized candidate could not beat the incumbent).
    pub pruned_by_cost: usize,
    /// Number of pending subproblems dropped unexplored at pop time by
    /// best-first dominance pruning (their inherited lower bound could not
    /// beat the incumbent). Always 0 for FIFO/DFS.
    pub pruned_dominated: usize,
    /// Number of subrelations skipped by symmetry pruning.
    pub skipped_by_symmetry: usize,
    /// Number of subrelations dropped because the FIFO was full.
    pub dropped_by_fifo: usize,
    /// Number of times the incumbent solution was improved.
    pub improvements: usize,
    /// `true` if the search ran to completion (empty frontier) rather than
    /// hitting the exploration budget.
    pub complete: bool,
    /// High-water mark of pending subproblems in the frontier — the search
    /// overhead of the chosen strategy (each pending subrelation keeps its
    /// characteristic function rooted).
    pub frontier_peak: usize,
    /// High-water mark of live BDD nodes in the relation's shared manager
    /// over this solve (the manager's peak gauge is re-based at solve
    /// entry) — the memory bound of the exploration. The FIFO of pending
    /// subrelations keeps its characteristic functions rooted (they are
    /// `Bdd` handles), so this is the frontier + incumbent footprint the
    /// kernel's GC cannot reclaim, on top of whatever was live before the
    /// solve started.
    pub peak_live_nodes: u64,
    /// Garbage collections the kernel ran during this solve.
    pub gc_collections: u64,
}

impl SolveStats {
    /// The counters as `(name, value)` pairs, for absorption into a
    /// [`brel_obs::MetricsRegistry`].
    pub fn metrics(&self) -> [(&'static str, u64); 11] {
        [
            ("explored", self.explored as u64),
            ("splits", self.splits as u64),
            ("pruned_by_cost", self.pruned_by_cost as u64),
            ("pruned_dominated", self.pruned_dominated as u64),
            ("skipped_by_symmetry", self.skipped_by_symmetry as u64),
            ("dropped_by_fifo", self.dropped_by_fifo as u64),
            ("improvements", self.improvements as u64),
            ("complete", u64::from(self.complete)),
            ("frontier_peak", self.frontier_peak as u64),
            ("peak_live_nodes", self.peak_live_nodes),
            ("gc_collections", self.gc_collections),
        ]
    }
}

/// The result of a solver run: the best compatible function found, its cost
/// and the exploration statistics.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The best compatible multiple-output function found.
    pub function: MultiOutputFunction,
    /// Its cost under the configured cost function.
    pub cost: u64,
    /// Exploration statistics.
    pub stats: SolveStats,
    /// The exploration trace (empty unless [`BrelConfig::trace`] is set).
    pub trace: Vec<TraceEvent>,
}

/// The recursive branch-and-bound Boolean-relation solver.
#[derive(Debug, Default)]
pub struct BrelSolver {
    config: BrelConfig,
}

impl BrelSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: BrelConfig) -> Self {
        BrelSolver { config }
    }

    /// The configuration of this solver.
    pub fn config(&self) -> &BrelConfig {
        &self.config
    }

    /// Solves the relation: returns the best compatible multiple-output
    /// function found within the configured budgets, exploring with the
    /// configured [`SearchStrategy`]. Equivalent to driving an
    /// [`Explorer`] to completion — use the explorer directly for anytime
    /// (pause/resume) operation.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::NotWellDefined`] if the relation is not well
    /// defined (no compatible function exists).
    pub fn solve(&self, relation: &BooleanRelation) -> Result<Solution, RelationError> {
        let mut explorer = Explorer::new(self.config.clone(), relation)?;
        explorer.run()?;
        Ok(explorer.into_solution())
    }

    /// Creates an incremental [`Explorer`] over the relation with this
    /// solver's configuration (the anytime entry point).
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::NotWellDefined`] if the relation is not well
    /// defined (no compatible function exists).
    pub fn explorer(&self, relation: &BooleanRelation) -> Result<Explorer, RelationError> {
        Explorer::new(self.config.clone(), relation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostFunction;
    use crate::quick::QuickSolver;
    use brel_relation::RelationSpace;

    fn fig1(space: &RelationSpace) -> BooleanRelation {
        BooleanRelation::from_table(space, "00:{00}\n01:{00}\n10:{00,11}\n11:{10,11}").unwrap()
    }

    #[test]
    fn solves_fig1_with_a_compatible_function() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let sol = BrelSolver::new(BrelConfig::default()).solve(&r).unwrap();
        assert!(r.is_compatible(&sol.function));
        assert!(sol.stats.explored >= 1);
        assert_eq!(sol.cost, CostFn::SumBddSize.cost(&sol.function));
    }

    #[test]
    fn rejects_ill_defined_relation() {
        let space = RelationSpace::new(1, 1);
        let r = BooleanRelation::from_table(&space, "1 : {1}").unwrap();
        assert!(matches!(
            BrelSolver::default().solve(&r),
            Err(RelationError::NotWellDefined)
        ));
    }

    #[test]
    fn exact_mode_finds_the_optimum_on_fig10() {
        // Fig. 10 / Section 9.1: the best solution is (x ⇔ b)(y ⇔ a) with
        // two single-literal outputs, while the quick initial solution is the
        // unbalanced (x ⇔ 1)(y ⇔ ab + a'b'). BREL in exact mode must escape
        // that local minimum and find the cost-2 solution.
        let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
        let r = BooleanRelation::from_table(
            &space,
            "00 : {00, 11}\n01 : {10}\n10 : {01, 10}\n11 : {11}",
        )
        .unwrap();
        let sol = BrelSolver::new(BrelConfig::exact()).solve(&r).unwrap();
        assert!(r.is_compatible(&sol.function));
        assert_eq!(sol.cost, 2, "both outputs should be single literals");
        assert!(sol.stats.complete);
        assert_eq!(sol.function.output(0), &space.input(1), "x ⇔ b");
        assert_eq!(sol.function.output(1), &space.input(0), "y ⇔ a");
    }

    #[test]
    fn fig7_example_is_solved_with_one_split() {
        // Fig. 7: R(a, b, c; x, y); the first MISF minimization conflicts on
        // vertices 010 and 101 and one split resolves it.
        let space = RelationSpace::with_names(&["a", "b", "c"], &["x", "y"]);
        let r = BooleanRelation::from_table(
            &space,
            "000 : {00, 10}\n001 : {01, 10}\n010 : {01, 10}\n011 : {11}\n100 : {00, 10}\n101 : {01, 10}\n110 : {11}\n111 : {01, 11}",
        )
        .unwrap();
        let config = BrelConfig::exact().with_trace(true);
        let sol = BrelSolver::new(config).solve(&r).unwrap();
        assert!(r.is_compatible(&sol.function));
        assert!(sol.stats.splits >= 1);
        assert!(sol
            .trace
            .iter()
            .any(|e| matches!(e, TraceEvent::Split { .. })));
    }

    #[test]
    fn budget_of_one_still_returns_a_solution() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let config = BrelConfig::default().with_max_explored(Some(1));
        let sol = BrelSolver::new(config).solve(&r).unwrap();
        assert!(r.is_compatible(&sol.function));
    }

    #[test]
    fn symmetry_pruning_reduces_exploration() {
        // A relation with two fully symmetric outputs.
        let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
        let r = BooleanRelation::from_table(
            &space,
            "00 : {01, 10}\n01 : {01, 10}\n10 : {01, 10}\n11 : {11}",
        )
        .unwrap();
        let without = BrelSolver::new(BrelConfig::exact().with_symmetry(false))
            .solve(&r)
            .unwrap();
        let with = BrelSolver::new(BrelConfig::exact().with_symmetry(true))
            .solve(&r)
            .unwrap();
        assert!(r.is_compatible(&without.function));
        assert!(r.is_compatible(&with.function));
        assert_eq!(
            without.cost, with.cost,
            "symmetry pruning must not change quality"
        );
        assert!(with.stats.explored <= without.stats.explored);
    }

    #[test]
    fn functional_relation_short_circuits() {
        let space = RelationSpace::new(2, 1);
        let a = space.input(0);
        let b = space.input(1);
        let f = MultiOutputFunction::new(&space, vec![a.iff(&b)]).unwrap();
        let r = BooleanRelation::from_function(&f);
        let sol = BrelSolver::default().solve(&r).unwrap();
        assert_eq!(sol.function.output(0), f.output(0));
        assert_eq!(sol.stats.splits, 0);
    }

    #[test]
    fn custom_cost_function_is_respected() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let config = BrelConfig::exact().with_cost(CostFn::LiteralCount);
        let sol = BrelSolver::new(config).solve(&r).unwrap();
        assert!(r.is_compatible(&sol.function));
        assert_eq!(sol.cost, CostFn::LiteralCount.cost(&sol.function));
    }

    #[test]
    fn config_builders_compose_and_clone() {
        use crate::minimize_isf::MinimizerKind;
        let config = BrelConfig::default()
            .with_minimizer(IsfMinimizer::without_elimination(MinimizerKind::Restrict))
            .with_strategy(SearchStrategy::Dfs)
            .with_fifo_capacity(Some(5))
            .with_symmetry(true)
            .with_symmetry_depth(2)
            .with_max_explored(Some(3))
            .with_trace(true);
        let clone = config.clone();
        assert_eq!(clone.minimizer, config.minimizer);
        assert_eq!(clone.strategy, SearchStrategy::Dfs);
        assert_eq!(clone.fifo_capacity, Some(5));
        assert!(clone.use_symmetry);
        assert_eq!(clone.symmetry_depth, 2);
        assert_eq!(clone.max_explored, Some(3));
        assert!(clone.trace);
        // The clone is a working configuration, not just a field copy.
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let sol = BrelSolver::new(clone).solve(&r).unwrap();
        assert!(r.is_compatible(&sol.function));
    }

    #[test]
    fn ill_conditioned_relations_never_hit_the_no_split_point_fallback() {
        // Regression for the old silent "no valid split point (should not
        // happen)" fallback, now the structured RelationError::NoSplitPoint.
        // These relations mix fully determined vertices (singleton images)
        // with conflicting flexible ones, so the largest-conflict-cube
        // completion of §7.4 can land on vertices where most outputs have no
        // flexibility — the scenario the fallback guarded. Provably (see
        // `search::expand`) a conflicting vertex always has one flexible
        // output, so exact-mode solves must complete without the error on
        // every strategy.
        let tables: [(&str, usize, usize); 3] = [
            (
                "000:{00}\n001:{11}\n010:{01,10}\n011:{10}\n100:{00,11}\n101:{01}\n110:{01,10}\n111:{11}",
                3,
                2,
            ),
            // Only one vertex carries all the flexibility.
            (
                "00:{10}\n01:{01}\n10:{00,01,10,11}\n11:{11}",
                2,
                2,
            ),
            // Flexibility concentrated on one output bit.
            (
                "000:{01}\n001:{01,11}\n010:{01}\n011:{01,11}\n100:{11}\n101:{01,11}\n110:{11}\n111:{01,11}",
                3,
                2,
            ),
        ];
        for (table, ni, no) in tables {
            let space = RelationSpace::new(ni, no);
            let r = BooleanRelation::from_table(&space, table).unwrap();
            for strategy in SearchStrategy::all() {
                let sol = BrelSolver::new(BrelConfig::exact().with_strategy(strategy))
                    .solve(&r)
                    .unwrap_or_else(|e| panic!("{strategy} failed on {table:?}: {e}"));
                assert!(r.is_compatible(&sol.function));
                assert!(sol.stats.complete);
            }
        }
    }

    #[test]
    fn step_deadline_truncates_with_the_incumbent_kept() {
        use crate::search::{ExploreStatus, Explorer, StepOutcome};
        let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
        let r = BooleanRelation::from_table(
            &space,
            "00 : {00, 11}\n01 : {10}\n10 : {01, 10}\n11 : {11}",
        )
        .unwrap();
        // Deadline of 1: the quick seed is available, but exploration stops
        // before the cost-2 optimum can be proved.
        let config = BrelConfig::exact().with_step_deadline(Some(1));
        let mut explorer = Explorer::new(config, &r).unwrap();
        assert!(matches!(
            explorer.run().unwrap(),
            ExploreStatus::DeadlineExpired
        ));
        assert_eq!(explorer.explored(), 1);
        assert!(r.is_compatible(explorer.best()));
        assert!(!explorer.stats().complete);
        // A further step keeps reporting the expired deadline.
        assert!(matches!(
            explorer.step().unwrap(),
            StepOutcome::DeadlineExpired
        ));
        // Without the deadline the same exploration completes at cost 2.
        let sol = BrelSolver::new(BrelConfig::exact()).solve(&r).unwrap();
        assert_eq!(sol.cost, 2);
    }

    #[test]
    fn step_guarded_surfaces_a_governor_abort_as_an_error() {
        use crate::search::Explorer;
        use brel_bdd::{BddError, ResourceGovernor};
        use brel_relation::RelationError;
        let space = RelationSpace::new(4, 3);
        // A relation with enough structure that exploration allocates.
        let mut table = String::new();
        for v in 0..16u32 {
            let bits: String = (0..4)
                .map(|i| char::from(b'0' + ((v >> (3 - i)) & 1) as u8))
                .collect();
            let img = if v % 3 == 0 {
                "{000, 111}"
            } else {
                "{010, 101}"
            };
            table.push_str(&format!("{bits} : {img}\n"));
        }
        let r = BooleanRelation::from_table(&space, &table).unwrap();
        let mut explorer = Explorer::new(BrelConfig::exact(), &r).unwrap();
        // An impossible quota: the very next allocating step must abort.
        space
            .mgr()
            .set_governor(ResourceGovernor::new().with_max_live_nodes(1));
        let mut aborted = false;
        for _ in 0..64 {
            match explorer.step_guarded() {
                Ok(_) => continue,
                Err(RelationError::ResourceExhausted(BddError::QuotaExceeded { .. })) => {
                    aborted = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(aborted, "a one-node quota must abort the exploration");
        space.mgr().clear_governor();
        // The shared manager is structurally intact after the abort.
        assert!(r.is_well_defined());
    }

    #[test]
    fn brel_strictly_beats_the_quick_solver_on_fig10() {
        let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
        let r = BooleanRelation::from_table(
            &space,
            "00 : {00, 11}\n01 : {10}\n10 : {01, 10}\n11 : {11}",
        )
        .unwrap();
        let quick = QuickSolver::new().solve(&r).unwrap();
        let quick_cost = CostFn::SumBddSize.cost(&quick);
        let sol = BrelSolver::new(BrelConfig::exact()).solve(&r).unwrap();
        assert!(
            sol.cost < quick_cost,
            "the branch-and-bound must escape the quick solver's local minimum"
        );
    }
}
