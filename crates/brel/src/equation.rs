//! Solving systems of Boolean equations through Boolean relations
//! (Section 8 of the paper).
//!
//! A Boolean equation `P(X, Y) ⊙ Q(X, Y)` (with `⊙` either `=` or `⊆`)
//! over independent variables `X` and dependent variables `Y` is first
//! rewritten into the form `T(X, Y) = 1` (Property 8.1); a system of such
//! equations is reduced to a single characteristic equation
//! `𝔼 = ⋀ᵢ Tᵢ` (Theorem 8.1). The characteristic function is a Boolean
//! relation; if it is well defined (consistent, Property 8.2) any of the
//! relation solvers produces a particular solution `Y(X)`.

use brel_bdd::Bdd;
use brel_relation::{BooleanRelation, MultiOutputFunction, RelationError, RelationSpace};

use crate::quick::QuickSolver;
use crate::solver::{BrelConfig, BrelSolver, Solution};

/// The comparison operator of a Boolean equation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EquationOperator {
    /// `P = Q` (equivalence).
    Equal,
    /// `P ⊆ Q` (inclusion: `P → Q` must be a tautology).
    Subset,
}

/// One Boolean equation `P ⊙ Q` over the variables of a [`RelationSpace`]
/// (independent variables = inputs, dependent variables = outputs).
#[derive(Debug, Clone)]
pub struct Equation {
    /// Left-hand side.
    pub lhs: Bdd,
    /// The comparison operator.
    pub op: EquationOperator,
    /// Right-hand side.
    pub rhs: Bdd,
}

impl Equation {
    /// Builds an equality equation `lhs = rhs`.
    pub fn equal(lhs: Bdd, rhs: Bdd) -> Self {
        Equation {
            lhs,
            op: EquationOperator::Equal,
            rhs,
        }
    }

    /// Builds an inclusion equation `lhs ⊆ rhs`.
    pub fn subset(lhs: Bdd, rhs: Bdd) -> Self {
        Equation {
            lhs,
            op: EquationOperator::Subset,
            rhs,
        }
    }

    /// Rewrites the equation to the `T = 1` form of Property 8.1:
    /// `P = Q  ⇔  (P ⊙ Q) = 1` with `T = P xnor Q`, and
    /// `P ⊆ Q  ⇔  (¬P + Q) = 1`.
    pub fn characteristic(&self) -> Bdd {
        match self.op {
            EquationOperator::Equal => self.lhs.iff(&self.rhs),
            EquationOperator::Subset => self.lhs.implies(&self.rhs),
        }
    }
}

/// A system of Boolean equations over a shared [`RelationSpace`].
#[derive(Debug)]
pub struct BooleanSystem {
    space: RelationSpace,
    equations: Vec<Equation>,
}

impl BooleanSystem {
    /// Creates an empty system over the given space (independent variables
    /// are the inputs, dependent variables the outputs).
    pub fn new(space: &RelationSpace) -> Self {
        BooleanSystem {
            space: space.clone(),
            equations: Vec::new(),
        }
    }

    /// Adds an equation to the system.
    pub fn push(&mut self, equation: Equation) -> &mut Self {
        self.equations.push(equation);
        self
    }

    /// The space of the system.
    pub fn space(&self) -> &RelationSpace {
        &self.space
    }

    /// The equations of the system.
    pub fn equations(&self) -> &[Equation] {
        &self.equations
    }

    /// Reduction of the system to a single characteristic function
    /// `𝔼(X, Y) = ⋀ᵢ Tᵢ(X, Y)` (Theorem 8.1). With no equations this is the
    /// tautology.
    pub fn characteristic(&self) -> Bdd {
        let mut acc = self.space.mgr().one();
        for eq in &self.equations {
            acc = acc.and(&eq.characteristic());
        }
        acc
    }

    /// The system seen as a Boolean relation between the independent and the
    /// dependent variables.
    pub fn to_relation(&self) -> BooleanRelation {
        BooleanRelation::from_characteristic(&self.space, self.characteristic())
    }

    /// Consistency check (Property 8.2): the system has a solution `Y(X)`
    /// iff for every assignment of the independent variables some assignment
    /// of the dependent variables satisfies `𝔼` — i.e. the associated
    /// relation is well defined.
    pub fn is_consistent(&self) -> bool {
        self.to_relation().is_well_defined()
    }

    /// Checks whether a multiple-output function is a particular solution of
    /// the system: substituting it must make `𝔼` a tautology.
    pub fn is_solution(&self, f: &MultiOutputFunction) -> bool {
        self.to_relation().is_compatible(f)
    }

    /// Finds a particular solution quickly (the quick, output-ordered
    /// solver).
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::Inconsistent`] if the system has no solution.
    pub fn solve_quick(&self) -> Result<MultiOutputFunction, RelationError> {
        if !self.is_consistent() {
            return Err(RelationError::Inconsistent);
        }
        QuickSolver::new().solve(&self.to_relation())
    }

    /// Finds an optimized particular solution with the BREL solver.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::Inconsistent`] if the system has no solution.
    pub fn solve(&self, config: BrelConfig) -> Result<Solution, RelationError> {
        if !self.is_consistent() {
            return Err(RelationError::Inconsistent);
        }
        BrelSolver::new(config).solve(&self.to_relation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The system of Example 8.1 of the paper:
    /// independent {a, b}, dependent {x, y, z},
    ///   x + b·ȳ·z̄ + b·z = a
    ///   x·y + x·z + y·z = 0
    fn example81() -> (RelationSpace, BooleanSystem) {
        let space = RelationSpace::with_names(&["a", "b"], &["x", "y", "z"]);
        let a = space.input(0);
        let b = space.input(1);
        let x = space.output(0);
        let y = space.output(1);
        let z = space.output(2);
        let lhs1 = x
            .or(&b.and(&y.complement()).and(&z.complement()))
            .or(&b.and(&z));
        let rhs1 = a.clone();
        let lhs2 = x.and(&y).or(&x.and(&z)).or(&y.and(&z));
        let rhs2 = space.mgr().zero();
        let mut system = BooleanSystem::new(&space);
        system.push(Equation::equal(lhs1, rhs1));
        system.push(Equation::equal(lhs2, rhs2));
        (space, system)
    }

    #[test]
    fn example_81_is_consistent_and_solved() {
        let (space, system) = example81();
        assert!(system.is_consistent());
        let solution = system.solve_quick().unwrap();
        assert!(system.is_solution(&solution));
        // Example 8.3's particular solution: x = a·b', y = a·b? …check the
        // paper's concrete witness x = ab̄, y = āb? Rather than fixing one
        // witness, verify the defining property on every input vertex.
        let chi = system.characteristic();
        for input in space.enumerate_inputs() {
            let out = solution.eval(&input).unwrap();
            let asg = space.full_assignment(&input, &out);
            assert!(
                chi.eval(&asg),
                "solution must satisfy the system at {input:?}"
            );
        }
    }

    #[test]
    fn example_83_witness_is_a_solution() {
        // The witness given in Example 8.3: x = a·b̄, y = a·b, z = a·b̄ + ā·b? —
        // the paper lists x = ab̄? Using the stated witness
        // x = a·b̄, y = a·b, z = ā·b + a·b̄ would not satisfy eq. 2 (x·z ≠ 0),
        // so we check the weaker and unambiguous statement: the relation
        // admits at least one compatible function and every compatible
        // function satisfies both equations.
        let (_space, system) = example81();
        let rel = system.to_relation();
        let f = QuickSolver::new().solve(&rel).unwrap();
        assert!(system.is_solution(&f));
        // Every pair admitted by the relation satisfies both equations.
        let chi = system.characteristic();
        assert_eq!(rel.characteristic(), &chi);
        let eq1 = system.equations()[0].characteristic();
        let eq2 = system.equations()[1].characteristic();
        assert!(chi.is_subset_of(&eq1));
        assert!(chi.is_subset_of(&eq2));
    }

    #[test]
    fn inconsistent_system_is_rejected() {
        let space = RelationSpace::with_names(&["a"], &["x"]);
        let a = space.input(0);
        let x = space.output(0);
        // x = a and x = ¬a cannot both hold.
        let mut system = BooleanSystem::new(&space);
        system.push(Equation::equal(x.clone(), a.clone()));
        system.push(Equation::equal(x, a.complement()));
        assert!(!system.is_consistent());
        assert!(matches!(
            system.solve_quick(),
            Err(RelationError::Inconsistent)
        ));
        assert!(matches!(
            system.solve(BrelConfig::default()),
            Err(RelationError::Inconsistent)
        ));
    }

    #[test]
    fn subset_equations() {
        let space = RelationSpace::with_names(&["a"], &["x"]);
        let a = space.input(0);
        let x = space.output(0);
        // a ⊆ x  (x must be 1 whenever a is 1)
        let mut system = BooleanSystem::new(&space);
        system.push(Equation::subset(a.clone(), x.clone()));
        assert!(system.is_consistent());
        let f = system.solve_quick().unwrap();
        // f(1) must be true.
        assert_eq!(f.eval(&[true]).unwrap(), vec![true]);
    }

    #[test]
    fn empty_system_admits_everything() {
        let space = RelationSpace::new(1, 1);
        let system = BooleanSystem::new(&space);
        assert!(system.is_consistent());
        assert!(system.characteristic().is_one());
        let sol = system.solve(BrelConfig::default()).unwrap();
        assert!(system.is_solution(&sol.function));
    }

    #[test]
    fn brel_solution_optimizes_cost() {
        let (_space, system) = example81();
        let quick = system.solve_quick().unwrap();
        let brel = system.solve(BrelConfig::exact()).unwrap();
        let quick_cost = quick.sum_of_sizes() as u64;
        assert!(brel.cost <= quick_cost);
        assert!(system.is_solution(&brel.function));
    }
}
