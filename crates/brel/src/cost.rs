//! Customizable cost functions.
//!
//! One of the distinguishing features of BREL over earlier heuristic solvers
//! (Herb, gyocro) is that the objective is a *parameter*: Section 7.3 of the
//! paper uses the sum of BDD sizes when optimizing area and the sum of
//! squared BDD sizes when optimizing delay (the squaring biases the search
//! towards balanced functions). Two-level metrics (cubes, literals) are also
//! provided for comparison with gyocro's objective.

use std::fmt;
use std::rc::Rc;

use brel_relation::MultiOutputFunction;

/// A cost function over candidate multiple-output functions. Lower is
/// better; the solver keeps the minimum-cost compatible function found.
pub trait CostFunction {
    /// Evaluates the cost of a candidate solution.
    fn cost(&self, f: &MultiOutputFunction) -> u64;

    /// A short human-readable name used in reports.
    fn name(&self) -> &str;
}

impl fmt::Debug for dyn CostFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CostFunction({})", self.name())
    }
}

/// The built-in cost functions plus an escape hatch for user closures.
/// Clonable (custom closures are reference-counted), so configurations
/// that embed a `CostFn` can be cloned wholesale.
#[derive(Clone, Default)]
pub enum CostFn {
    /// Sum of the BDD sizes of the outputs (area-oriented; the default).
    #[default]
    SumBddSize,
    /// Sum of the squared BDD sizes (delay-oriented: favours balanced
    /// outputs).
    SumSquaredBddSize,
    /// Shared BDD size of all outputs (counts shared logic once).
    SharedBddSize,
    /// Number of cubes of the ISOP covers (gyocro's primary objective).
    CubeCount,
    /// Number of literals of the ISOP covers.
    LiteralCount,
    /// A user-provided cost function.
    Custom {
        /// Display name.
        name: String,
        /// The cost closure (shared between clones).
        eval: Rc<dyn Fn(&MultiOutputFunction) -> u64>,
    },
}

impl fmt::Debug for CostFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CostFn({})", self.name())
    }
}

impl CostFn {
    /// Wraps a closure as a cost function.
    pub fn custom(
        name: impl Into<String>,
        eval: impl Fn(&MultiOutputFunction) -> u64 + 'static,
    ) -> Self {
        CostFn::Custom {
            name: name.into(),
            eval: Rc::new(eval),
        }
    }
}

impl CostFunction for CostFn {
    fn cost(&self, f: &MultiOutputFunction) -> u64 {
        match self {
            CostFn::SumBddSize => f.sum_of_sizes() as u64,
            CostFn::SumSquaredBddSize => f.sum_of_squared_sizes() as u64,
            CostFn::SharedBddSize => f.shared_size() as u64,
            CostFn::CubeCount => f.num_cubes() as u64,
            CostFn::LiteralCount => f.num_literals() as u64,
            CostFn::Custom { eval, .. } => eval(f),
        }
    }

    fn name(&self) -> &str {
        match self {
            CostFn::SumBddSize => "sum-bdd-size",
            CostFn::SumSquaredBddSize => "sum-squared-bdd-size",
            CostFn::SharedBddSize => "shared-bdd-size",
            CostFn::CubeCount => "cube-count",
            CostFn::LiteralCount => "literal-count",
            CostFn::Custom { name, .. } => name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brel_relation::RelationSpace;

    fn sample() -> (RelationSpace, MultiOutputFunction) {
        let space = RelationSpace::new(3, 2);
        let a = space.input(0);
        let b = space.input(1);
        let c = space.input(2);
        let f0 = a.and(&b).or(&c);
        let f1 = a.clone();
        let f = MultiOutputFunction::new(&space, vec![f0, f1]).unwrap();
        (space, f)
    }

    #[test]
    fn builtin_costs_are_consistent() {
        let (_space, f) = sample();
        let sum = CostFn::SumBddSize.cost(&f);
        let sq = CostFn::SumSquaredBddSize.cost(&f);
        let shared = CostFn::SharedBddSize.cost(&f);
        assert_eq!(sum, (f.output(0).size() + f.output(1).size()) as u64);
        assert!(sq >= sum);
        assert!(shared <= sum);
        assert!(CostFn::CubeCount.cost(&f) >= 1);
        assert!(CostFn::LiteralCount.cost(&f) >= CostFn::CubeCount.cost(&f));
    }

    #[test]
    fn squared_cost_prefers_balanced_solutions() {
        let space = RelationSpace::new(4, 2);
        let a = space.input(0);
        let b = space.input(1);
        let c = space.input(2);
        let d = space.input(3);
        // Unbalanced: one big function, one trivial.
        let big = a.and(&b).or(&c.and(&d)).xor(&a.or(&d));
        let unbalanced = MultiOutputFunction::new(&space, vec![big, space.mgr().one()]).unwrap();
        // Balanced: two medium functions.
        let balanced = MultiOutputFunction::new(&space, vec![a.and(&b), c.and(&d)]).unwrap();
        let sq = CostFn::SumSquaredBddSize;
        let lin = CostFn::SumBddSize;
        // The squared metric penalizes the unbalanced pair relatively more.
        let ratio_sq = sq.cost(&unbalanced) as f64 / sq.cost(&balanced) as f64;
        let ratio_lin = lin.cost(&unbalanced) as f64 / lin.cost(&balanced) as f64;
        assert!(ratio_sq > ratio_lin);
    }

    #[test]
    fn custom_cost_function() {
        let (_space, f) = sample();
        let custom = CostFn::custom("support-size", |f| {
            f.outputs().iter().map(|g| g.support().len() as u64).sum()
        });
        assert_eq!(custom.name(), "support-size");
        assert_eq!(custom.cost(&f), 4);
        assert_eq!(format!("{custom:?}"), "CostFn(support-size)");
        // Clones share the closure and agree on every input.
        let cloned = custom.clone();
        assert_eq!(cloned.name(), custom.name());
        assert_eq!(cloned.cost(&f), custom.cost(&f));
    }

    #[test]
    fn default_is_sum_of_sizes() {
        let c = CostFn::default();
        assert_eq!(c.name(), "sum-bdd-size");
    }
}
