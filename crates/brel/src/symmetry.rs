//! Symmetry pruning of the branch-and-bound exploration (Section 7.7).
//!
//! Two subrelations that only differ by a permutation of output variables in
//! which the original relation is symmetric lead to solutions of equal cost
//! (with any of the BDD-based cost functions), so only one of them needs to
//! be explored. BREL keeps a cache of the characteristic functions of the
//! relations already processed and skips a new relation when a symmetric
//! variant is in the cache.

use brel_bdd::Bdd;
use brel_relation::BooleanRelation;

/// A cache of already-explored relations with output-symmetry lookups.
///
/// The cache holds rooted [`Bdd`] handles rather than raw node ids: an
/// explored subrelation may be dropped by the solver, and with a
/// garbage-collecting kernel its reclaimed node id could be recycled for
/// an unrelated function — a raw-id set would then report a false
/// symmetric hit and wrongly prune a branch. Rooting the characteristic
/// functions pins them (and their ids) for the cache's lifetime; lookups
/// are a linear scan over handle equality, which resolves through the
/// root table and therefore also survives arena compaction. The cache is
/// bounded by the exploration budget, so the scan stays short.
#[derive(Debug, Default)]
pub struct SymmetryCache {
    seen: Vec<Bdd>,
    hits: usize,
}

impl SymmetryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SymmetryCache::default()
    }

    /// Number of relations skipped thanks to a symmetric hit.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of distinct relations recorded.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Returns `true` if no relation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Records `relation` and reports whether it (or an output-permuted
    /// variant of it) had already been recorded. Only first-order output
    /// symmetries (single swaps of two output variables) are considered,
    /// matching the implementation choices described in the paper.
    pub fn check_and_insert(&mut self, relation: &BooleanRelation) -> bool {
        let chi = relation.characteristic();
        if self.seen.contains(chi) {
            self.hits += 1;
            return true;
        }
        let outputs = relation.space().output_vars();
        for i in 0..outputs.len() {
            for j in (i + 1)..outputs.len() {
                let swapped = chi.swap_vars(outputs[i], outputs[j]);
                if swapped != *chi && self.seen.contains(&swapped) {
                    self.hits += 1;
                    self.seen.push(chi.clone());
                    return true;
                }
            }
        }
        self.seen.push(chi.clone());
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brel_relation::RelationSpace;

    #[test]
    fn detects_output_swapped_relation() {
        // In the spirit of Fig. 8a: a 1-input, 2-output relation symmetric in
        // (x, y) whose split children are output-permuted images of each other.
        let space = RelationSpace::with_names(&["a"], &["x", "y"]);
        let r = BooleanRelation::from_table(&space, "0 : {01, 10}\n1 : {11}").unwrap();
        // Split on vertex 0 and output x: the two children are symmetric to
        // each other under swapping x and y.
        let (r_neg, r_pos) = r.split(&[false], 0).unwrap();
        let mut cache = SymmetryCache::new();
        assert!(!cache.check_and_insert(&r_neg));
        assert!(
            cache.check_and_insert(&r_pos),
            "symmetric variant already explored"
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn identical_relation_is_a_hit() {
        let space = RelationSpace::new(1, 1);
        let r = BooleanRelation::full(&space);
        let mut cache = SymmetryCache::new();
        assert!(!cache.check_and_insert(&r));
        assert!(cache.check_and_insert(&r));
    }

    #[test]
    fn asymmetric_relations_are_kept_separate() {
        let space = RelationSpace::new(1, 2);
        let r1 = BooleanRelation::from_table(&space, "0 : {01}\n1 : {01}").unwrap();
        let r2 = BooleanRelation::from_table(&space, "0 : {00}\n1 : {11}").unwrap();
        let mut cache = SymmetryCache::new();
        assert!(!cache.check_and_insert(&r1));
        assert!(!cache.check_and_insert(&r2));
        assert_eq!(cache.hits(), 0);
    }
}
