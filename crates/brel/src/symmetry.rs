//! Symmetry pruning of the branch-and-bound exploration (Section 7.7).
//!
//! Two subrelations that only differ by a permutation of output variables in
//! which the original relation is symmetric lead to solutions of equal cost
//! (with any of the BDD-based cost functions), so only one of them needs to
//! be explored. BREL keeps a cache of the characteristic functions of the
//! relations already processed and skips a new relation when a symmetric
//! variant is in the cache.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

use brel_bdd::Bdd;
use brel_relation::{BooleanRelation, RelationRow};

/// A cache of already-explored relations with output-symmetry lookups.
///
/// The cache holds rooted [`Bdd`] handles rather than raw node ids: an
/// explored subrelation may be dropped by the solver, and with a
/// garbage-collecting kernel its reclaimed node id could be recycled for
/// an unrelated function — a raw-id set would then report a false
/// symmetric hit and wrongly prune a branch. Rooting the characteristic
/// functions pins them (and their ids) for the cache's lifetime; lookups
/// are a linear scan over handle equality, which resolves through the
/// root table and therefore also survives arena compaction. The cache is
/// bounded by the exploration budget, so the scan stays short.
#[derive(Debug, Default)]
pub struct SymmetryCache {
    seen: Vec<Bdd>,
    hits: usize,
}

impl SymmetryCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        SymmetryCache::default()
    }

    /// Number of relations skipped thanks to a symmetric hit.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of distinct relations recorded.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Returns `true` if no relation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Records `relation` and reports whether it (or an output-permuted
    /// variant of it) had already been recorded. Only first-order output
    /// symmetries (single swaps of two output variables) are considered,
    /// matching the implementation choices described in the paper.
    pub fn check_and_insert(&mut self, relation: &BooleanRelation) -> bool {
        let chi = relation.characteristic();
        if self.seen.contains(chi) {
            self.hits += 1;
            return true;
        }
        let outputs = relation.space().output_vars();
        for i in 0..outputs.len() {
            for j in (i + 1)..outputs.len() {
                let swapped = chi.swap_vars(outputs[i], outputs[j]);
                if swapped != *chi && self.seen.contains(&swapped) {
                    self.hits += 1;
                    self.seen.push(chi.clone());
                    return true;
                }
            }
        }
        self.seen.push(chi.clone());
        false
    }
}

/// Canonicalizes tabular relation rows: duplicate input vertices are
/// merged, output sets are sorted and deduplicated, rows with an empty
/// image are dropped (a missing input vertex and an empty image denote the
/// same thing in [`BooleanRelation::from_rows`]), and the surviving rows
/// are sorted by input vertex. Two row lists describe the same relation
/// iff their canonical forms are equal, which is what lets the batch
/// engine build its cross-job cache keys — and rehydrate relations — from
/// one deterministic representation regardless of how a spec was authored.
pub fn canonical_rows(rows: &[RelationRow]) -> Vec<RelationRow> {
    let mut by_input: BTreeMap<Vec<bool>, BTreeSet<Vec<bool>>> = BTreeMap::new();
    for (input, outputs) in rows {
        let image = by_input.entry(input.clone()).or_default();
        for output in outputs {
            image.insert(output.clone());
        }
    }
    by_input
        .into_iter()
        .filter(|(_, image)| !image.is_empty())
        .map(|(input, image)| (input, image.into_iter().collect()))
        .collect()
}

/// The input-support mask of canonical rows: bit `i` is set iff the
/// relation actually depends on input `i`. Input `i` is *non-support* when
/// every pair of input vertices differing only in bit `i` has the same
/// image (a missing vertex counts as an empty image); such a column is
/// noise for caching purposes — two subrelations equal up to irrelevant
/// input columns solve identically.
///
/// `rows` must be canonical (see [`canonical_rows`]): unique input
/// vertices with sorted images, so images compare by slice equality.
pub fn input_support_mask(num_inputs: usize, rows: &[RelationRow]) -> u64 {
    let by_input: HashMap<&[bool], &[Vec<bool>]> = rows
        .iter()
        .map(|(input, image)| (input.as_slice(), image.as_slice()))
        .collect();
    let mut mask = 0u64;
    for i in 0..num_inputs.min(64) {
        let depends = rows.iter().any(|(input, image)| {
            let mut partner = input.clone();
            partner[i] = !partner[i];
            let partner_image = by_input.get(partner.as_slice()).copied().unwrap_or(&[]);
            partner_image != image.as_slice()
        });
        if depends {
            mask |= 1 << i;
        }
    }
    mask
}

/// A 64-bit fingerprint of the relation a row list describes, invariant
/// under row order, duplicate pairs, unordered images, *and* irrelevant
/// input columns: rows are canonicalized, non-support input columns are
/// projected away (the support mask itself stays part of the fingerprint,
/// so relations that ignore *different* columns do not collide), and the
/// result is hashed together with the space dimensions. The engine keys
/// its cross-job solved-subrelation cache on this value.
pub fn relation_fingerprint(num_inputs: usize, num_outputs: usize, rows: &[RelationRow]) -> u64 {
    let canonical = canonical_rows(rows);
    let mask = input_support_mask(num_inputs, &canonical);
    let projected: BTreeSet<(Vec<bool>, Vec<Vec<bool>>)> = canonical
        .into_iter()
        .map(|(input, image)| {
            let kept: Vec<bool> = (0..num_inputs)
                .filter(|&i| i >= 64 || mask & (1 << i) != 0)
                .map(|i| input[i])
                .collect();
            (kept, image)
        })
        .collect();
    let mut hasher = DefaultHasher::new();
    num_inputs.hash(&mut hasher);
    num_outputs.hash(&mut hasher);
    mask.hash(&mut hasher);
    projected.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use brel_relation::RelationSpace;

    #[test]
    fn detects_output_swapped_relation() {
        // In the spirit of Fig. 8a: a 1-input, 2-output relation symmetric in
        // (x, y) whose split children are output-permuted images of each other.
        let space = RelationSpace::with_names(&["a"], &["x", "y"]);
        let r = BooleanRelation::from_table(&space, "0 : {01, 10}\n1 : {11}").unwrap();
        // Split on vertex 0 and output x: the two children are symmetric to
        // each other under swapping x and y.
        let (r_neg, r_pos) = r.split(&[false], 0).unwrap();
        let mut cache = SymmetryCache::new();
        assert!(!cache.check_and_insert(&r_neg));
        assert!(
            cache.check_and_insert(&r_pos),
            "symmetric variant already explored"
        );
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn identical_relation_is_a_hit() {
        let space = RelationSpace::new(1, 1);
        let r = BooleanRelation::full(&space);
        let mut cache = SymmetryCache::new();
        assert!(!cache.check_and_insert(&r));
        assert!(cache.check_and_insert(&r));
    }

    #[test]
    fn canonical_rows_merge_sort_and_drop_empty_images() {
        let rows: Vec<RelationRow> = vec![
            (vec![true], vec![vec![true], vec![false]]),
            (vec![false], vec![]),
            (vec![true], vec![vec![true]]),
        ];
        let canonical = canonical_rows(&rows);
        assert_eq!(
            canonical,
            vec![(vec![true], vec![vec![false], vec![true]])],
            "duplicates merged, image sorted, empty row dropped"
        );
    }

    #[test]
    fn support_mask_spots_irrelevant_input_columns() {
        // R over (x0, x1): image depends on x1 only.
        let rows = canonical_rows(&[
            (vec![false, false], vec![vec![false]]),
            (vec![true, false], vec![vec![false]]),
            (vec![false, true], vec![vec![true]]),
            (vec![true, true], vec![vec![true]]),
        ]);
        assert_eq!(input_support_mask(2, &rows), 0b10);
        // Making the images differ across x0 flips bit 0 on.
        let dependent = canonical_rows(&[
            (vec![false, false], vec![vec![false]]),
            (vec![true, false], vec![vec![true]]),
            (vec![false, true], vec![vec![false]]),
            (vec![true, true], vec![vec![true]]),
        ]);
        assert_eq!(input_support_mask(2, &dependent), 0b01);
        // A vertex with pairs whose flipped partner has none: that column
        // is support too (missing means empty image, not "don't know").
        let partial = canonical_rows(&[(vec![false, false], vec![vec![false]])]);
        assert_eq!(input_support_mask(2, &partial), 0b11);
    }

    #[test]
    fn fingerprint_is_invariant_under_row_noise() {
        let base: Vec<RelationRow> = vec![
            (vec![false, false], vec![vec![false], vec![true]]),
            (vec![true, false], vec![vec![true]]),
            (vec![false, true], vec![vec![false]]),
            (vec![true, true], vec![vec![true]]),
        ];
        let fp = relation_fingerprint(2, 1, &base);
        // Row permutation, image permutation, duplicate pairs: same print.
        let noisy: Vec<RelationRow> = vec![
            (vec![true, true], vec![vec![true]]),
            (
                vec![false, false],
                vec![vec![true], vec![false], vec![true]],
            ),
            (vec![true, false], vec![vec![true]]),
            (vec![false, true], vec![vec![false]]),
        ];
        assert_eq!(relation_fingerprint(2, 1, &noisy), fp);
        // A genuinely different relation: different print.
        let other: Vec<RelationRow> = vec![
            (vec![false, false], vec![vec![false]]),
            (vec![true, false], vec![vec![true]]),
            (vec![false, true], vec![vec![false]]),
            (vec![true, true], vec![vec![true]]),
        ];
        assert_ne!(relation_fingerprint(2, 1, &other), fp);
    }

    #[test]
    fn fingerprint_normalizes_support_but_keeps_the_mask() {
        // R ignores x0; S is the same relation over x1 alone.
        let wide: Vec<RelationRow> = vec![
            (vec![false, false], vec![vec![false]]),
            (vec![true, false], vec![vec![false]]),
            (vec![false, true], vec![vec![true]]),
            (vec![true, true], vec![vec![true]]),
        ];
        // The same projected rows with a *different* irrelevant column must
        // not collide: the mask participates in the hash.
        let wide_other: Vec<RelationRow> = vec![
            (vec![false, false], vec![vec![false]]),
            (vec![false, true], vec![vec![false]]),
            (vec![true, false], vec![vec![true]]),
            (vec![true, true], vec![vec![true]]),
        ];
        assert_ne!(
            relation_fingerprint(2, 1, &wide),
            relation_fingerprint(2, 1, &wide_other)
        );
    }

    #[test]
    fn asymmetric_relations_are_kept_separate() {
        let space = RelationSpace::new(1, 2);
        let r1 = BooleanRelation::from_table(&space, "0 : {01}\n1 : {01}").unwrap();
        let r2 = BooleanRelation::from_table(&space, "0 : {00}\n1 : {11}").unwrap();
        let mut cache = SymmetryCache::new();
        assert!(!cache.check_and_insert(&r1));
        assert!(!cache.check_and_insert(&r2));
        assert_eq!(cache.hits(), 0);
    }
}
