//! The naive quick solver (Fig. 4 of the paper).
//!
//! The quick solver minimizes the outputs one at a time, in order, each time
//! using all the flexibility the relation still offers, and then constrains
//! the relation with the chosen implementation before moving to the next
//! output. It is fast but order-dependent and tends to produce unbalanced
//! solutions (Example 6.1); BREL uses it to guarantee that at least one
//! compatible function is known for every explored subrelation (§7.2),
//! and gyocro uses it to obtain its initial solution.

use brel_relation::{BooleanRelation, MultiOutputFunction, RelationError};

use crate::minimize_isf::IsfMinimizer;

/// The quick, output-ordered Boolean-relation solver.
#[derive(Debug, Clone, Default)]
pub struct QuickSolver {
    minimizer: IsfMinimizer,
    order: Option<Vec<usize>>,
}

impl QuickSolver {
    /// Creates a quick solver with the default ISF minimizer and the natural
    /// output order.
    pub fn new() -> Self {
        QuickSolver::default()
    }

    /// Uses a specific ISF minimizer.
    pub fn with_minimizer(mut self, minimizer: IsfMinimizer) -> Self {
        self.minimizer = minimizer;
        self
    }

    /// Minimizes the outputs in the given order (a permutation of
    /// `0..num_outputs`). The solution depends on this order — one of the
    /// drawbacks of the quick solver discussed in Section 6.2.
    pub fn with_order(mut self, order: Vec<usize>) -> Self {
        self.order = Some(order);
        self
    }

    /// Solves the relation.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::NotWellDefined`] if the relation is not well
    /// defined (it then has no compatible function), or
    /// [`RelationError::Parse`] if a custom order is not a permutation.
    pub fn solve(&self, relation: &BooleanRelation) -> Result<MultiOutputFunction, RelationError> {
        if !relation.is_well_defined() {
            return Err(RelationError::NotWellDefined);
        }
        let space = relation.space().clone();
        let m = space.num_outputs();
        let order: Vec<usize> = match &self.order {
            Some(o) => {
                let mut sorted = o.clone();
                sorted.sort_unstable();
                if sorted != (0..m).collect::<Vec<_>>() {
                    return Err(RelationError::Parse(
                        "output order must be a permutation of 0..num_outputs".to_string(),
                    ));
                }
                o.clone()
            }
            None => (0..m).collect(),
        };
        let mut current = relation.clone();
        let mut outputs = vec![space.mgr().zero(); m];
        for &i in &order {
            let isf = current.projection(i);
            let f = self.minimizer.minimize(&isf);
            current = current.constrain_output(i, &f);
            debug_assert!(
                current.is_well_defined(),
                "constraining with a projection-compatible function keeps the relation well defined"
            );
            outputs[i] = f;
        }
        let solution = MultiOutputFunction::new(&space, outputs)?;
        debug_assert!(relation.is_compatible(&solution));
        Ok(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brel_relation::RelationSpace;

    fn fig1(space: &RelationSpace) -> BooleanRelation {
        BooleanRelation::from_table(space, "00:{00}\n01:{00}\n10:{00,11}\n11:{10,11}").unwrap()
    }

    #[test]
    fn quick_solution_is_compatible() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let f = QuickSolver::new().solve(&r).unwrap();
        assert!(r.is_compatible(&f));
    }

    #[test]
    fn rejects_ill_defined_relations() {
        let space = RelationSpace::new(1, 1);
        let r = BooleanRelation::from_table(&space, "1 : {1}").unwrap();
        assert!(matches!(
            QuickSolver::new().solve(&r),
            Err(RelationError::NotWellDefined)
        ));
    }

    #[test]
    fn order_changes_but_preserves_compatibility() {
        // The Fig. 5 example: R(a, b; x, y) where solving x first steals the
        // flexibility of y.
        let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
        let r = BooleanRelation::from_table(
            &space,
            "00 : {01, 10}\n01 : {11}\n10 : {11}\n11 : {01, 10}",
        )
        .unwrap();
        let f_xy = QuickSolver::new().with_order(vec![0, 1]).solve(&r).unwrap();
        let f_yx = QuickSolver::new().with_order(vec![1, 0]).solve(&r).unwrap();
        assert!(r.is_compatible(&f_xy));
        assert!(r.is_compatible(&f_yx));
    }

    #[test]
    fn invalid_order_is_rejected() {
        let space = RelationSpace::new(1, 2);
        let r = BooleanRelation::full(&space);
        let err = QuickSolver::new().with_order(vec![0, 0]).solve(&r);
        assert!(err.is_err());
    }

    #[test]
    fn functional_relation_is_returned_unchanged() {
        let space = RelationSpace::new(2, 1);
        let a = space.input(0);
        let b = space.input(1);
        let target = MultiOutputFunction::new(&space, vec![a.xor(&b)]).unwrap();
        let r = BooleanRelation::from_function(&target);
        let f = QuickSolver::new().solve(&r).unwrap();
        assert_eq!(f.output(0), target.output(0));
    }
}
