//! Multiple-output covers.
//!
//! A [`MultiCover`] bundles one [`Cover`] per output over a shared input
//! space. It is the textual/counting representation of the multiple-output
//! functions returned by the BR solvers, and the unit of comparison of
//! Table 2 (`CB` counts distinct input cubes, `LIT` counts input literals).

use std::fmt;

use brel_bdd::{Bdd, BddSession, Var};

use crate::cover::Cover;
use crate::cube::Cube;
use crate::SopError;

/// A multiple-output sum-of-products cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiCover {
    num_inputs: usize,
    outputs: Vec<Cover>,
}

impl MultiCover {
    /// Creates a cover with `num_outputs` empty outputs over `num_inputs`
    /// variables.
    pub fn new(num_inputs: usize, num_outputs: usize) -> Self {
        MultiCover {
            num_inputs,
            outputs: vec![Cover::empty(num_inputs); num_outputs],
        }
    }

    /// Builds a multi-output cover from per-output covers.
    ///
    /// # Errors
    ///
    /// Returns [`SopError::WidthMismatch`] if the covers disagree on the
    /// number of inputs.
    pub fn from_outputs(outputs: Vec<Cover>) -> Result<Self, SopError> {
        let num_inputs = outputs.first().map(Cover::width).unwrap_or(0);
        for c in &outputs {
            if c.width() != num_inputs {
                return Err(SopError::WidthMismatch {
                    expected: num_inputs,
                    found: c.width(),
                });
            }
        }
        Ok(MultiCover {
            num_inputs,
            outputs,
        })
    }

    /// Number of input variables.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The cover of output `i`.
    pub fn output(&self, i: usize) -> &Cover {
        &self.outputs[i]
    }

    /// Mutable access to the cover of output `i`.
    pub fn output_mut(&mut self, i: usize) -> &mut Cover {
        &mut self.outputs[i]
    }

    /// All output covers.
    pub fn outputs(&self) -> &[Cover] {
        &self.outputs
    }

    /// Number of *distinct* input cubes used across all outputs — the
    /// multiple-output product-term count used as `CB` in Table 2.
    pub fn num_cubes(&self) -> usize {
        let mut seen: Vec<&Cube> = Vec::new();
        for cover in &self.outputs {
            for cube in cover.cubes() {
                if !seen.contains(&cube) {
                    seen.push(cube);
                }
            }
        }
        seen.len()
    }

    /// Total number of input literals summed over all outputs (`LIT`).
    pub fn num_literals(&self) -> usize {
        self.outputs.iter().map(Cover::num_literals).sum()
    }

    /// Evaluates every output on the assignment.
    pub fn eval(&self, assignment: &[bool]) -> Vec<bool> {
        self.outputs.iter().map(|c| c.eval(assignment)).collect()
    }

    /// Builds the BDD of each output using manager variables `0..num_inputs`.
    pub fn to_bdds(&self, mgr: &BddSession) -> Vec<Bdd> {
        self.outputs.iter().map(|c| c.to_bdd(mgr)).collect()
    }

    /// Builds the BDD of each output mapping position `i` to `vars[i]`.
    pub fn to_bdds_with_vars(&self, mgr: &BddSession, vars: &[Var]) -> Vec<Bdd> {
        self.outputs
            .iter()
            .map(|c| c.to_bdd_with_vars(mgr, vars))
            .collect()
    }

    /// Applies [`Cover::make_irredundant`] to every output.
    pub fn make_irredundant(&mut self) {
        for c in &mut self.outputs {
            c.make_irredundant();
        }
    }
}

impl fmt::Display for MultiCover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.outputs.iter().enumerate() {
            writeln!(f, "# output {i}")?;
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(width: usize, rows: &[&str]) -> Cover {
        Cover::from_cubes(
            width,
            rows.iter().map(|r| Cube::parse(r).unwrap()).collect(),
        )
        .unwrap()
    }

    #[test]
    fn counts_share_identical_cubes() {
        let mc =
            MultiCover::from_outputs(vec![cover(2, &["1-", "01"]), cover(2, &["1-"])]).unwrap();
        assert_eq!(mc.num_inputs(), 2);
        assert_eq!(mc.num_outputs(), 2);
        // "1-" is shared between the outputs, so only two distinct cubes.
        assert_eq!(mc.num_cubes(), 2);
        assert_eq!(mc.num_literals(), 4);
    }

    #[test]
    fn eval_per_output() {
        let mc = MultiCover::from_outputs(vec![cover(2, &["1-"]), cover(2, &["-0"])]).unwrap();
        assert_eq!(mc.eval(&[true, true]), vec![true, false]);
        assert_eq!(mc.eval(&[false, false]), vec![false, true]);
    }

    #[test]
    fn mismatched_inputs_rejected() {
        let err =
            MultiCover::from_outputs(vec![cover(2, &["1-"]), cover(3, &["1--"])]).unwrap_err();
        assert!(matches!(err, SopError::WidthMismatch { .. }));
    }

    #[test]
    fn to_bdds_match_eval() {
        let mgr = BddSession::new(2);
        let mc =
            MultiCover::from_outputs(vec![cover(2, &["11"]), cover(2, &["0-", "-0"])]).unwrap();
        let bdds = mc.to_bdds(&mgr);
        for bits in 0..4u32 {
            let asg: Vec<bool> = (0..2).map(|i| bits & (1 << i) != 0).collect();
            let vals = mc.eval(&asg);
            for (f, v) in bdds.iter().zip(vals) {
                assert_eq!(f.eval(&asg), v);
            }
        }
    }
}
