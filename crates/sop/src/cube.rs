//! Product terms in positional-cube notation.

use std::fmt;

use brel_bdd::{Bdd, BddSession, Var};

/// The value taken by one input variable inside a cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CubeValue {
    /// The variable appears complemented (`0`).
    Zero,
    /// The variable appears uncomplemented (`1`).
    One,
    /// The variable does not appear (`-`).
    DontCare,
}

impl CubeValue {
    fn to_char(self) -> char {
        match self {
            CubeValue::Zero => '0',
            CubeValue::One => '1',
            CubeValue::DontCare => '-',
        }
    }
}

/// Error returned by [`Cube::parse`] for malformed cube strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCubeError {
    /// The offending character.
    pub found: char,
    /// Its position within the string.
    pub position: usize,
}

impl fmt::Display for ParseCubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid cube character `{}` at position {}",
            self.found, self.position
        )
    }
}

impl std::error::Error for ParseCubeError {}

/// A product term (cube) over an ordered set of input variables.
///
/// The cube is stored positionally: entry `i` describes the literal of
/// variable `i`. A cube with no `0`/`1` entries is the constant-true
/// product.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    values: Vec<CubeValue>,
}

impl Cube {
    /// The universal cube (all positions `-`) over `width` variables.
    pub fn universe(width: usize) -> Self {
        Cube {
            values: vec![CubeValue::DontCare; width],
        }
    }

    /// Builds a cube from explicit positional values.
    pub fn new(values: Vec<CubeValue>) -> Self {
        Cube { values }
    }

    /// Builds a cube from a minterm (a complete assignment).
    pub fn from_minterm(assignment: &[bool]) -> Self {
        Cube {
            values: assignment
                .iter()
                .map(|&b| if b { CubeValue::One } else { CubeValue::Zero })
                .collect(),
        }
    }

    /// Parses a cube from the usual `{0,1,-}` string notation.
    ///
    /// # Errors
    ///
    /// Returns [`ParseCubeError`] if the string contains any other character.
    pub fn parse(text: &str) -> Result<Self, ParseCubeError> {
        let mut values = Vec::with_capacity(text.len());
        for (position, ch) in text.chars().enumerate() {
            let v = match ch {
                '0' => CubeValue::Zero,
                '1' => CubeValue::One,
                '-' | '2' | 'x' | 'X' => CubeValue::DontCare,
                found => return Err(ParseCubeError { found, position }),
            };
            values.push(v);
        }
        Ok(Cube { values })
    }

    /// Number of input variables (the width of the cube).
    pub fn width(&self) -> usize {
        self.values.len()
    }

    /// The positional values.
    pub fn values(&self) -> &[CubeValue] {
        &self.values
    }

    /// Value of position `i`.
    pub fn value(&self, i: usize) -> CubeValue {
        self.values[i]
    }

    /// Sets the literal of variable `i`.
    pub fn set(&mut self, i: usize, value: CubeValue) {
        self.values[i] = value;
    }

    /// Number of literals (non-don't-care positions).
    pub fn num_literals(&self) -> usize {
        self.values
            .iter()
            .filter(|v| !matches!(v, CubeValue::DontCare))
            .count()
    }

    /// Returns `true` if the assignment is covered by the cube.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.values.iter().enumerate().all(|(i, v)| match v {
            CubeValue::Zero => !assignment[i],
            CubeValue::One => assignment[i],
            CubeValue::DontCare => true,
        })
    }

    /// Returns `true` if `self` covers `other` (every minterm of `other` is
    /// a minterm of `self`).
    pub fn contains(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.width(), other.width());
        self.values
            .iter()
            .zip(other.values.iter())
            .all(|(a, b)| match (a, b) {
                (CubeValue::DontCare, _) => true,
                (x, y) => x == y,
            })
    }

    /// Intersection of two cubes, or `None` if they are disjoint.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.width(), other.width());
        let mut values = Vec::with_capacity(self.width());
        for (a, b) in self.values.iter().zip(other.values.iter()) {
            let v = match (a, b) {
                (CubeValue::DontCare, x) => *x,
                (x, CubeValue::DontCare) => *x,
                (x, y) if x == y => *x,
                _ => return None,
            };
            values.push(v);
        }
        Some(Cube { values })
    }

    /// The smallest cube containing both operands (their supercube).
    pub fn supercube(&self, other: &Cube) -> Cube {
        debug_assert_eq!(self.width(), other.width());
        let values = self
            .values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| if a == b { *a } else { CubeValue::DontCare })
            .collect();
        Cube { values }
    }

    /// Hamming-like distance: the number of positions in which the two
    /// cubes have conflicting (0 vs 1) literals.
    pub fn distance(&self, other: &Cube) -> usize {
        debug_assert_eq!(self.width(), other.width());
        self.values
            .iter()
            .zip(other.values.iter())
            .filter(|(a, b)| {
                matches!(
                    (a, b),
                    (CubeValue::Zero, CubeValue::One) | (CubeValue::One, CubeValue::Zero)
                )
            })
            .count()
    }

    /// Number of minterms covered by the cube.
    pub fn num_minterms(&self) -> u128 {
        1u128 << (self.width() - self.num_literals())
    }

    /// Builds the BDD of the cube using manager variables `0..width`.
    pub fn to_bdd(&self, mgr: &BddSession) -> Bdd {
        let literals: Vec<(Var, bool)> = self
            .values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| match v {
                CubeValue::Zero => Some((Var(i as u32), false)),
                CubeValue::One => Some((Var(i as u32), true)),
                CubeValue::DontCare => None,
            })
            .collect();
        mgr.cube(&literals)
    }

    /// Builds the BDD of the cube mapping position `i` to `vars[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is shorter than the cube width.
    pub fn to_bdd_with_vars(&self, mgr: &BddSession, vars: &[Var]) -> Bdd {
        let literals: Vec<(Var, bool)> = self
            .values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| match v {
                CubeValue::Zero => Some((vars[i], false)),
                CubeValue::One => Some((vars[i], true)),
                CubeValue::DontCare => None,
            })
            .collect();
        mgr.cube(&literals)
    }

    /// Renders the cube in `{0,1,-}` notation.
    pub fn to_text(&self) -> String {
        self.values.iter().map(|v| v.to_char()).collect()
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let c = Cube::parse("10-1").unwrap();
        assert_eq!(c.to_text(), "10-1");
        assert_eq!(c.width(), 4);
        assert_eq!(c.num_literals(), 3);
        assert!(Cube::parse("10z").is_err());
        let err = Cube::parse("0*").unwrap_err();
        assert_eq!(err.position, 1);
    }

    #[test]
    fn eval_and_contains() {
        let c = Cube::parse("1-0").unwrap();
        assert!(c.eval(&[true, true, false]));
        assert!(c.eval(&[true, false, false]));
        assert!(!c.eval(&[false, true, false]));
        let m = Cube::parse("110").unwrap();
        assert!(c.contains(&m));
        assert!(!m.contains(&c));
        assert!(Cube::universe(3).contains(&c));
    }

    #[test]
    fn intersect_supercube_distance() {
        let a = Cube::parse("1-0").unwrap();
        let b = Cube::parse("11-").unwrap();
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.to_text(), "110");
        let s = a.supercube(&b);
        assert_eq!(s.to_text(), "1--");
        let c = Cube::parse("0--").unwrap();
        assert!(a.intersect(&c).is_none());
        assert_eq!(a.distance(&c), 1);
        assert_eq!(a.distance(&b), 0);
    }

    #[test]
    fn minterm_count_and_from_minterm() {
        let c = Cube::parse("1--").unwrap();
        assert_eq!(c.num_minterms(), 4);
        let m = Cube::from_minterm(&[true, false, true]);
        assert_eq!(m.to_text(), "101");
        assert_eq!(m.num_minterms(), 1);
    }

    #[test]
    fn to_bdd_matches_eval() {
        let mgr = BddSession::new(3);
        let c = Cube::parse("0-1").unwrap();
        let f = c.to_bdd(&mgr);
        for bits in 0..8u32 {
            let asg: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(f.eval(&asg), c.eval(&asg));
        }
    }

    #[test]
    fn to_bdd_with_explicit_vars() {
        let mgr = BddSession::new(5);
        let c = Cube::parse("10").unwrap();
        let f = c.to_bdd_with_vars(&mgr, &[Var(3), Var(1)]);
        assert_eq!(f.support(), vec![Var(1), Var(3)]);
        assert!(f.eval(&[false, false, false, true, false]));
    }
}
