//! Single-output covers: sets of cubes denoting their disjunction.

use std::fmt;

use brel_bdd::{Bdd, BddSession, IsopResult, Var};

use crate::cube::{Cube, CubeValue};
use crate::SopError;

/// A sum-of-products cover of a single-output function.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cover {
    width: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty cover (constant false) over `width` inputs.
    pub fn empty(width: usize) -> Self {
        Cover {
            width,
            cubes: Vec::new(),
        }
    }

    /// The tautological cover (a single universal cube).
    pub fn tautology(width: usize) -> Self {
        Cover {
            width,
            cubes: vec![Cube::universe(width)],
        }
    }

    /// Builds a cover from cubes.
    ///
    /// # Errors
    ///
    /// Returns [`SopError::WidthMismatch`] if any cube has a different width.
    pub fn from_cubes(width: usize, cubes: Vec<Cube>) -> Result<Self, SopError> {
        for c in &cubes {
            if c.width() != width {
                return Err(SopError::WidthMismatch {
                    expected: width,
                    found: c.width(),
                });
            }
        }
        Ok(Cover { width, cubes })
    }

    /// Converts the result of BDD-based ISOP generation into a cover.
    ///
    /// `vars[i]` gives the BDD variable corresponding to cover position `i`;
    /// literals of variables not listed in `vars` are rejected.
    ///
    /// # Panics
    ///
    /// Panics if the ISOP mentions a variable not present in `vars`.
    pub fn from_isop(isop: &IsopResult, vars: &[Var]) -> Self {
        let width = vars.len();
        let pos_of = |v: Var| -> usize {
            vars.iter()
                .position(|&x| x == v)
                .expect("ISOP literal refers to a variable outside the cover support")
        };
        let cubes = isop
            .cubes
            .iter()
            .map(|c| {
                let mut cube = Cube::universe(width);
                for &(v, positive) in c.literals() {
                    cube.set(
                        pos_of(v),
                        if positive {
                            CubeValue::One
                        } else {
                            CubeValue::Zero
                        },
                    );
                }
                cube
            })
            .collect();
        Cover { width, cubes }
    }

    /// Number of input variables.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes (the paper's `CB` metric).
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Total number of literals (the paper's `LIT` metric).
    pub fn num_literals(&self) -> usize {
        self.cubes.iter().map(Cube::num_literals).sum()
    }

    /// Returns `true` if the cover has no cubes (constant false).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Adds a cube.
    ///
    /// # Errors
    ///
    /// Returns [`SopError::WidthMismatch`] on width disagreement.
    pub fn push(&mut self, cube: Cube) -> Result<(), SopError> {
        if cube.width() != self.width {
            return Err(SopError::WidthMismatch {
                expected: self.width,
                found: cube.width(),
            });
        }
        self.cubes.push(cube);
        Ok(())
    }

    /// Evaluates the cover on a complete assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.cubes.iter().any(|c| c.eval(assignment))
    }

    /// Builds the BDD of the cover using manager variables `0..width`.
    pub fn to_bdd(&self, mgr: &BddSession) -> Bdd {
        let mut acc = mgr.zero();
        for c in &self.cubes {
            acc = acc.or(&c.to_bdd(mgr));
        }
        acc
    }

    /// Builds the BDD of the cover mapping position `i` to `vars[i]`.
    pub fn to_bdd_with_vars(&self, mgr: &BddSession, vars: &[Var]) -> Bdd {
        let mut acc = mgr.zero();
        for c in &self.cubes {
            acc = acc.or(&c.to_bdd_with_vars(mgr, vars));
        }
        acc
    }

    /// Removes cubes that are single-cube contained in another cube of the
    /// cover (a cheap, always-safe simplification).
    pub fn remove_contained_cubes(&mut self) {
        let mut keep = vec![true; self.cubes.len()];
        for i in 0..self.cubes.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..self.cubes.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if self.cubes[j].contains(&self.cubes[i])
                    && (self.cubes[i] != self.cubes[j] || i > j)
                {
                    keep[i] = false;
                    break;
                }
            }
        }
        let mut idx = 0;
        self.cubes.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// Cofactor of the cover with respect to `var = value` (positionally).
    pub fn cofactor(&self, var: usize, value: bool) -> Cover {
        let mut cubes = Vec::new();
        for c in &self.cubes {
            match (c.value(var), value) {
                (CubeValue::Zero, true) | (CubeValue::One, false) => continue,
                _ => {
                    let mut nc = c.clone();
                    nc.set(var, CubeValue::DontCare);
                    cubes.push(nc);
                }
            }
        }
        Cover {
            width: self.width,
            cubes,
        }
    }

    /// Tautology check by unate reduction / Shannon expansion.
    pub fn is_tautology(&self) -> bool {
        // Fast exits.
        if self.cubes.iter().any(|c| c.num_literals() == 0) {
            return true;
        }
        if self.cubes.is_empty() {
            return false;
        }
        // Pick the most-binate variable for the expansion.
        let mut best_var = None;
        let mut best_score = 0usize;
        for v in 0..self.width {
            let ones = self
                .cubes
                .iter()
                .filter(|c| c.value(v) == CubeValue::One)
                .count();
            let zeros = self
                .cubes
                .iter()
                .filter(|c| c.value(v) == CubeValue::Zero)
                .count();
            if ones + zeros == 0 {
                continue;
            }
            let score = ones.min(zeros) * 1000 + ones + zeros;
            if score >= best_score {
                best_score = score;
                best_var = Some(v);
            }
        }
        let Some(v) = best_var else {
            // No literals anywhere — handled above, but be safe.
            return !self.cubes.is_empty();
        };
        self.cofactor(v, false).is_tautology() && self.cofactor(v, true).is_tautology()
    }

    /// Returns `true` if the cover covers the given cube (i.e. the cube
    /// implies the cover). Checked by cofactoring the cover against the
    /// cube and testing for tautology.
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        let mut reduced = self.clone();
        for (i, v) in cube.values().iter().enumerate() {
            match v {
                CubeValue::Zero => reduced = reduced.cofactor(i, false),
                CubeValue::One => reduced = reduced.cofactor(i, true),
                CubeValue::DontCare => {}
            }
        }
        reduced.is_tautology()
    }

    /// Removes cubes that are covered by the rest of the cover
    /// (multi-cube containment), yielding an irredundant cover.
    pub fn make_irredundant(&mut self) {
        self.remove_contained_cubes();
        let mut i = 0;
        while i < self.cubes.len() {
            let cube = self.cubes[i].clone();
            let rest = Cover {
                width: self.width,
                cubes: self
                    .cubes
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, c)| c.clone())
                    .collect(),
            };
            if rest.covers_cube(&cube) {
                self.cubes.remove(i);
            } else {
                i += 1;
            }
        }
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.cubes {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(width: usize, rows: &[&str]) -> Cover {
        Cover::from_cubes(
            width,
            rows.iter().map(|r| Cube::parse(r).unwrap()).collect(),
        )
        .unwrap()
    }

    #[test]
    fn literal_and_cube_counts() {
        let c = cover(3, &["10-", "--1"]);
        assert_eq!(c.num_cubes(), 2);
        assert_eq!(c.num_literals(), 3);
        assert_eq!(c.width(), 3);
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let err = Cover::from_cubes(3, vec![Cube::parse("10").unwrap()]).unwrap_err();
        assert!(matches!(
            err,
            SopError::WidthMismatch {
                expected: 3,
                found: 2
            }
        ));
        let mut c = Cover::empty(2);
        assert!(c.push(Cube::parse("111").unwrap()).is_err());
    }

    #[test]
    fn eval_and_bdd_agree() {
        let mgr = BddSession::new(3);
        let c = cover(3, &["1-0", "01-"]);
        let f = c.to_bdd(&mgr);
        for bits in 0..8u32 {
            let asg: Vec<bool> = (0..3).map(|i| bits & (1 << i) != 0).collect();
            assert_eq!(c.eval(&asg), f.eval(&asg));
        }
    }

    #[test]
    fn tautology_detection() {
        assert!(Cover::tautology(3).is_tautology());
        assert!(!Cover::empty(3).is_tautology());
        // x + x' is a tautology
        let c = cover(1, &["0", "1"]);
        assert!(c.is_tautology());
        // a + a'b + a'b' is a tautology
        let c = cover(2, &["1-", "01", "00"]);
        assert!(c.is_tautology());
        // a + b is not
        let c = cover(2, &["1-", "-1"]);
        assert!(!c.is_tautology());
    }

    #[test]
    fn containment_removal() {
        let mut c = cover(3, &["1--", "110", "0-1"]);
        c.remove_contained_cubes();
        assert_eq!(c.num_cubes(), 2);
        assert!(c.cubes().iter().any(|x| x.to_text() == "1--"));
        assert!(c.cubes().iter().all(|x| x.to_text() != "110"));
    }

    #[test]
    fn duplicate_cubes_removed_once() {
        let mut c = cover(2, &["1-", "1-"]);
        c.remove_contained_cubes();
        assert_eq!(c.num_cubes(), 1);
    }

    #[test]
    fn irredundant_removes_consensus_cube() {
        // a·b + a'·c + b·c : the consensus term b·c is redundant.
        let mut c = cover(3, &["11-", "0-1", "-11"]);
        let mgr = BddSession::new(3);
        let before = c.to_bdd(&mgr);
        c.make_irredundant();
        assert_eq!(c.num_cubes(), 2);
        let after = c.to_bdd(&mgr);
        assert_eq!(before, after, "irredundant must not change the function");
    }

    #[test]
    fn covers_cube_checks() {
        let c = cover(2, &["1-", "-1"]);
        assert!(c.covers_cube(&Cube::parse("11").unwrap()));
        assert!(c.covers_cube(&Cube::parse("1-").unwrap()));
        assert!(!c.covers_cube(&Cube::parse("--").unwrap()));
        assert!(!c.covers_cube(&Cube::parse("00").unwrap()));
    }

    #[test]
    fn cofactor_matches_semantics() {
        let mgr = BddSession::new(3);
        let c = cover(3, &["11-", "0-1"]);
        let f = c.to_bdd(&mgr);
        let c0 = c.cofactor(0, false);
        let f0 = f.cofactor(Var(0), false);
        assert_eq!(c0.to_bdd(&mgr), f0);
        let c1 = c.cofactor(0, true);
        let f1 = f.cofactor(Var(0), true);
        assert_eq!(c1.to_bdd(&mgr), f1);
    }

    #[test]
    fn from_isop_round_trip() {
        let mgr = BddSession::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let f = a.and(&b).or(&c.and(&d.complement()));
        let isop = f.isop();
        let cover = Cover::from_isop(&isop, &[Var(0), Var(1), Var(2), Var(3)]);
        assert_eq!(cover.to_bdd(&mgr), f);
    }
}
