//! ESPRESSO-style cover optimization against an incompletely specified
//! function.
//!
//! The gyocro baseline of the paper (Watanabe & Brayton) repeatedly applies
//! the `reduce` → `expand` → `irredundant` loop on a cover whose freedom is
//! given by an interval `[On, On ∪ Dc]`. The functions in this module
//! implement those three operations for a single-output cover, using BDDs as
//! the oracle for validity checks (a cube may expand only while it stays
//! inside `On ∪ Dc`; a cover is valid only while it still covers `On`).

use brel_bdd::{Bdd, BddSession, Var};

use crate::cover::Cover;
use crate::cube::{Cube, CubeValue};

/// The don't-care interval `[on, on ∪ dc]` an optimized cover must respect.
#[derive(Debug, Clone)]
pub struct Interval {
    /// Minterms that must be covered.
    pub on: Bdd,
    /// Upper bound: minterms that may be covered (`on ∪ dc`).
    pub upper: Bdd,
}

impl Interval {
    /// Creates an interval from the onset and the don't-care set.
    pub fn new(on: Bdd, dc: &Bdd) -> Self {
        let upper = on.or(dc);
        Interval { on, upper }
    }

    /// Creates the exact interval of a completely specified function.
    pub fn exact(f: Bdd) -> Self {
        Interval {
            upper: f.clone(),
            on: f,
        }
    }

    /// Returns `true` if `cover` implements the interval: it covers `on`
    /// and stays within `upper`.
    pub fn admits(&self, cover: &Cover, mgr: &BddSession, vars: &[Var]) -> bool {
        let f = cover.to_bdd_with_vars(mgr, vars);
        self.on.is_subset_of(&f) && f.is_subset_of(&self.upper)
    }
}

/// Expands every cube of the cover as much as possible (removing literals)
/// while the cube stays inside `interval.upper`. Literals are tried in
/// ascending variable order, matching the greedy single-variable expansion
/// described for Herb/gyocro in the paper.
pub fn expand(cover: &mut Cover, interval: &Interval, mgr: &BddSession, vars: &[Var]) {
    let upper = &interval.upper;
    let width = cover.width();
    let cubes: Vec<Cube> = cover
        .cubes()
        .iter()
        .map(|cube| {
            let mut best = cube.clone();
            for v in 0..width {
                if best.value(v) == CubeValue::DontCare {
                    continue;
                }
                let mut candidate = best.clone();
                candidate.set(v, CubeValue::DontCare);
                let cbdd = candidate.to_bdd_with_vars(mgr, vars);
                if cbdd.is_subset_of(upper) {
                    best = candidate;
                }
            }
            best
        })
        .collect();
    *cover = Cover::from_cubes(width, cubes).expect("expand preserves the width");
    cover.remove_contained_cubes();
}

/// Reduces every cube to the smallest cube that still covers the part of
/// `interval.on` not covered by the other cubes. Cubes that become empty
/// are dropped.
pub fn reduce(cover: &mut Cover, interval: &Interval, mgr: &BddSession, vars: &[Var]) {
    let width = cover.width();
    let cubes: Vec<Cube> = cover.cubes().to_vec();
    let mut result: Vec<Cube> = Vec::new();
    for (i, cube) in cubes.iter().enumerate() {
        // Required part: on-set minterms inside this cube not covered by the
        // other cubes (taking already-reduced versions for the earlier ones).
        let mut others = mgr.zero();
        for (j, other) in cubes.iter().enumerate() {
            if i == j {
                continue;
            }
            let c = if j < result.len() { &result[j] } else { other };
            others = others.or(&c.to_bdd_with_vars(mgr, vars));
        }
        let cube_bdd = cube.to_bdd_with_vars(mgr, vars);
        let required = interval.on.and(&cube_bdd).diff(&others);
        if required.is_zero() {
            // Keep the cube untouched; irredundant removal will decide later.
            result.push(cube.clone());
            continue;
        }
        // Smallest enclosing cube of `required` within this cube.
        let mut reduced = cube.clone();
        for (pos, &var) in vars.iter().enumerate().take(width) {
            if reduced.value(pos) != CubeValue::DontCare {
                continue;
            }
            let req0 = required.cofactor(var, false);
            let req1 = required.cofactor(var, true);
            if req0.is_zero() {
                reduced.set(pos, CubeValue::One);
            } else if req1.is_zero() {
                reduced.set(pos, CubeValue::Zero);
            }
        }
        result.push(reduced);
    }
    *cover = Cover::from_cubes(width, result).expect("reduce preserves the width");
}

/// Removes cubes not needed to cover `interval.on`.
pub fn irredundant(cover: &mut Cover, interval: &Interval, mgr: &BddSession, vars: &[Var]) {
    cover.remove_contained_cubes();
    let mut i = 0;
    while i < cover.num_cubes() {
        let mut others = mgr.zero();
        for (j, c) in cover.cubes().iter().enumerate() {
            if j != i {
                others = others.or(&c.to_bdd_with_vars(mgr, vars));
            }
        }
        if interval.on.is_subset_of(&others) {
            let mut cubes = cover.cubes().to_vec();
            cubes.remove(i);
            *cover = Cover::from_cubes(cover.width(), cubes).expect("same width");
        } else {
            i += 1;
        }
    }
}

/// Runs the reduce–expand–irredundant loop until the `(cubes, literals)`
/// cost stops improving, returning the number of iterations performed.
pub fn reduce_expand_irredundant(
    cover: &mut Cover,
    interval: &Interval,
    mgr: &BddSession,
    vars: &[Var],
    max_iterations: usize,
) -> usize {
    let mut best_cost = (cover.num_cubes(), cover.num_literals());
    let mut iterations = 0;
    for _ in 0..max_iterations {
        iterations += 1;
        reduce(cover, interval, mgr, vars);
        expand(cover, interval, mgr, vars);
        irredundant(cover, interval, mgr, vars);
        let cost = (cover.num_cubes(), cover.num_literals());
        if cost >= best_cost {
            break;
        }
        best_cost = cost;
    }
    iterations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(n: usize) -> Vec<Var> {
        (0..n).map(|i| Var(i as u32)).collect()
    }

    fn cover(width: usize, rows: &[&str]) -> Cover {
        Cover::from_cubes(
            width,
            rows.iter().map(|r| Cube::parse(r).unwrap()).collect(),
        )
        .unwrap()
    }

    #[test]
    fn expand_uses_dont_cares() {
        let mgr = BddSession::new(2);
        let vs = vars(2);
        // on = a·b ; dc = a·b'  → the cube 11 can expand to 1-.
        let on = cover(2, &["11"]).to_bdd(&mgr);
        let dc = cover(2, &["10"]).to_bdd(&mgr);
        let interval = Interval::new(on, &dc);
        let mut c = cover(2, &["11"]);
        expand(&mut c, &interval, &mgr, &vs);
        assert_eq!(c.num_cubes(), 1);
        assert_eq!(c.cubes()[0].to_text(), "1-");
        assert!(interval.admits(&c, &mgr, &vs));
    }

    #[test]
    fn reduce_shrinks_overlapping_cube() {
        let mgr = BddSession::new(2);
        let vs = vars(2);
        // on = a + b, cover = {1-, -1}; reducing either cube must keep validity.
        let on = cover(2, &["1-", "-1"]).to_bdd(&mgr);
        let interval = Interval::exact(on);
        let mut c = cover(2, &["1-", "-1"]);
        reduce(&mut c, &interval, &mgr, &vs);
        expand(&mut c, &interval, &mgr, &vs);
        irredundant(&mut c, &interval, &mgr, &vs);
        assert!(interval.admits(&c, &mgr, &vs));
        assert_eq!(c.num_cubes(), 2);
    }

    #[test]
    fn irredundant_drops_consensus_cube() {
        let mgr = BddSession::new(3);
        let vs = vars(3);
        let full = cover(3, &["11-", "0-1", "-11"]);
        let on = full.to_bdd(&mgr);
        let interval = Interval::exact(on);
        let mut c = full.clone();
        irredundant(&mut c, &interval, &mgr, &vs);
        assert_eq!(c.num_cubes(), 2);
        assert!(interval.admits(&c, &mgr, &vs));
    }

    #[test]
    fn loop_converges_and_preserves_interval() {
        let mgr = BddSession::new(3);
        let vs = vars(3);
        // on covers the odd-parity minterms of (a, b) plus dc on c.
        let on = cover(3, &["100", "010", "111", "001"]).to_bdd(&mgr);
        let dc = cover(3, &["110"]).to_bdd(&mgr);
        let interval = Interval::new(on, &dc);
        let mut c = cover(3, &["100", "010", "111", "001"]);
        let before = (c.num_cubes(), c.num_literals());
        let iters = reduce_expand_irredundant(&mut c, &interval, &mgr, &vs, 10);
        assert!(iters >= 1);
        assert!(interval.admits(&c, &mgr, &vs));
        let after = (c.num_cubes(), c.num_literals());
        assert!(after <= before, "cost must not increase");
    }

    #[test]
    fn interval_admits_detects_violations() {
        let mgr = BddSession::new(2);
        let vs = vars(2);
        let on = cover(2, &["11"]).to_bdd(&mgr);
        let interval = Interval::exact(on);
        let good = cover(2, &["11"]);
        let too_big = cover(2, &["1-"]);
        let too_small = Cover::empty(2);
        assert!(interval.admits(&good, &mgr, &vs));
        assert!(!interval.admits(&too_big, &mgr, &vs));
        assert!(!interval.admits(&too_small, &mgr, &vs));
    }
}
