//! A reader/writer for the Berkeley PLA text format (the `.type fr` flavour
//! used by ESPRESSO), providing the textual interchange of two-level covers
//! used in the benchmark harness.

use crate::cover::Cover;
use crate::cube::{Cube, CubeValue};
use crate::multi::MultiCover;
use crate::SopError;

/// Contents of a PLA description: the onset and don't-care set covers of a
/// multiple-output function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaFile {
    /// Number of input variables.
    pub num_inputs: usize,
    /// Number of outputs.
    pub num_outputs: usize,
    /// Input variable names (defaults to `x{i}`).
    pub input_names: Vec<String>,
    /// Output names (defaults to `y{i}`).
    pub output_names: Vec<String>,
    /// Onset cover per output.
    pub on: MultiCover,
    /// Don't-care cover per output.
    pub dc: MultiCover,
}

impl PlaFile {
    /// Creates an empty PLA of the given dimensions.
    pub fn new(num_inputs: usize, num_outputs: usize) -> Self {
        PlaFile {
            num_inputs,
            num_outputs,
            input_names: (0..num_inputs).map(|i| format!("x{i}")).collect(),
            output_names: (0..num_outputs).map(|i| format!("y{i}")).collect(),
            on: MultiCover::new(num_inputs, num_outputs),
            dc: MultiCover::new(num_inputs, num_outputs),
        }
    }

    /// Parses a PLA description.
    ///
    /// # Errors
    ///
    /// Returns [`SopError::Parse`] on malformed input (unknown directives
    /// are ignored; missing `.i`/`.o` headers, rows of the wrong width or
    /// rows with invalid characters are errors).
    pub fn parse(text: &str) -> Result<Self, SopError> {
        let mut num_inputs: Option<usize> = None;
        let mut num_outputs: Option<usize> = None;
        let mut input_names: Option<Vec<String>> = None;
        let mut output_names: Option<Vec<String>> = None;
        let mut rows: Vec<(Cube, Vec<char>)> = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('.') {
                let mut parts = rest.split_whitespace();
                let directive = parts.next().unwrap_or("");
                match directive {
                    "i" => {
                        num_inputs = Some(parse_usize(parts.next(), lineno)?);
                    }
                    "o" => {
                        num_outputs = Some(parse_usize(parts.next(), lineno)?);
                    }
                    "ilb" => {
                        input_names = Some(parts.map(str::to_string).collect());
                    }
                    "ob" => {
                        output_names = Some(parts.map(str::to_string).collect());
                    }
                    "p" | "type" | "e" | "end" => {}
                    _ => {}
                }
                continue;
            }
            // A product-term row: input part followed by output part.
            let mut parts = line.split_whitespace();
            let input_part = parts.next().ok_or_else(|| {
                SopError::Parse(format!("line {}: missing input part", lineno + 1))
            })?;
            let output_part: String = parts.collect::<Vec<_>>().join("");
            let cube = Cube::parse(input_part)
                .map_err(|e| SopError::Parse(format!("line {}: {e}", lineno + 1)))?;
            rows.push((cube, output_part.chars().collect()));
        }

        let num_inputs =
            num_inputs.ok_or_else(|| SopError::Parse("missing .i directive".to_string()))?;
        let num_outputs =
            num_outputs.ok_or_else(|| SopError::Parse("missing .o directive".to_string()))?;

        let mut on_outputs = vec![Cover::empty(num_inputs); num_outputs];
        let mut dc_outputs = vec![Cover::empty(num_inputs); num_outputs];
        for (cube, out_chars) in rows {
            if cube.width() != num_inputs {
                return Err(SopError::Parse(format!(
                    "row `{cube}` has {} inputs, expected {num_inputs}",
                    cube.width()
                )));
            }
            if out_chars.len() != num_outputs {
                return Err(SopError::Parse(format!(
                    "row `{cube}` has {} outputs, expected {num_outputs}",
                    out_chars.len()
                )));
            }
            for (o, ch) in out_chars.iter().enumerate() {
                match ch {
                    '1' | '4' => on_outputs[o].push(cube.clone()).expect("width checked"),
                    '-' | '2' => dc_outputs[o].push(cube.clone()).expect("width checked"),
                    '0' | '~' | '3' => {}
                    other => {
                        return Err(SopError::Parse(format!(
                            "invalid output character `{other}` in row `{cube}`"
                        )))
                    }
                }
            }
        }

        Ok(PlaFile {
            num_inputs,
            num_outputs,
            input_names: input_names
                .unwrap_or_else(|| (0..num_inputs).map(|i| format!("x{i}")).collect()),
            output_names: output_names
                .unwrap_or_else(|| (0..num_outputs).map(|i| format!("y{i}")).collect()),
            on: MultiCover::from_outputs(on_outputs)?,
            dc: MultiCover::from_outputs(dc_outputs)?,
        })
    }

    /// Renders the PLA back to text (onset rows only, plus `-` rows for the
    /// don't-care set, as in ESPRESSO's `fd` type).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(".i {}\n", self.num_inputs));
        out.push_str(&format!(".o {}\n", self.num_outputs));
        out.push_str(&format!(".ilb {}\n", self.input_names.join(" ")));
        out.push_str(&format!(".ob {}\n", self.output_names.join(" ")));
        // Collect rows: map input cube -> output pattern.
        let mut rows: Vec<(Cube, Vec<char>)> = Vec::new();
        let add = |cube: &Cube, output: usize, ch: char, rows: &mut Vec<(Cube, Vec<char>)>| {
            if let Some(row) = rows.iter_mut().find(|(c, _)| c == cube) {
                row.1[output] = ch;
            } else {
                let mut pattern = vec!['0'; self.num_outputs];
                pattern[output] = ch;
                rows.push((cube.clone(), pattern));
            }
        };
        for (o, cover) in self.on.outputs().iter().enumerate() {
            for cube in cover.cubes() {
                add(cube, o, '1', &mut rows);
            }
        }
        for (o, cover) in self.dc.outputs().iter().enumerate() {
            for cube in cover.cubes() {
                add(cube, o, '-', &mut rows);
            }
        }
        out.push_str(&format!(".p {}\n", rows.len()));
        for (cube, pattern) in rows {
            out.push_str(&format!(
                "{} {}\n",
                cube,
                pattern.into_iter().collect::<String>()
            ));
        }
        out.push_str(".e\n");
        out
    }

    /// Convenience constructor: onset covers only, no don't cares.
    ///
    /// # Errors
    ///
    /// Returns [`SopError::WidthMismatch`] if the covers disagree on width.
    pub fn from_on_covers(covers: Vec<Cover>) -> Result<Self, SopError> {
        let on = MultiCover::from_outputs(covers)?;
        let num_inputs = on.num_inputs();
        let num_outputs = on.num_outputs();
        Ok(PlaFile {
            num_inputs,
            num_outputs,
            input_names: (0..num_inputs).map(|i| format!("x{i}")).collect(),
            output_names: (0..num_outputs).map(|i| format!("y{i}")).collect(),
            on,
            dc: MultiCover::new(num_inputs, num_outputs),
        })
    }
}

fn parse_usize(tok: Option<&str>, lineno: usize) -> Result<usize, SopError> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| SopError::Parse(format!("line {}: expected a number", lineno + 1)))
}

/// Checks whether a cube value is a don't care (helper shared with tests).
pub fn is_dont_care(v: CubeValue) -> bool {
    matches!(v, CubeValue::DontCare)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# two-output sample
.i 3
.o 2
.ilb a b c
.ob f g
.p 4
1-0 10
011 11
000 0-
111 01
.e
";

    #[test]
    fn parse_sample() {
        let pla = PlaFile::parse(SAMPLE).unwrap();
        assert_eq!(pla.num_inputs, 3);
        assert_eq!(pla.num_outputs, 2);
        assert_eq!(pla.input_names, vec!["a", "b", "c"]);
        assert_eq!(pla.on.output(0).num_cubes(), 2);
        assert_eq!(pla.on.output(1).num_cubes(), 2);
        assert_eq!(pla.dc.output(1).num_cubes(), 1);
        assert!(pla.on.output(0).eval(&[true, false, false]));
        assert!(!pla.on.output(0).eval(&[true, true, true]));
    }

    #[test]
    fn round_trip_preserves_semantics() {
        let pla = PlaFile::parse(SAMPLE).unwrap();
        let text = pla.to_text();
        let reparsed = PlaFile::parse(&text).unwrap();
        assert_eq!(pla.on, reparsed.on);
        assert_eq!(pla.dc, reparsed.dc);
    }

    #[test]
    fn missing_header_is_an_error() {
        assert!(PlaFile::parse("1-0 1\n").is_err());
    }

    #[test]
    fn bad_row_width_is_an_error() {
        let text = ".i 3\n.o 1\n10 1\n";
        assert!(PlaFile::parse(text).is_err());
        let text = ".i 2\n.o 2\n10 1\n";
        assert!(PlaFile::parse(text).is_err());
    }

    #[test]
    fn bad_output_character_is_an_error() {
        let text = ".i 2\n.o 1\n10 z\n";
        assert!(PlaFile::parse(text).is_err());
    }

    #[test]
    fn from_on_covers_builds_defaults() {
        let c = Cover::from_cubes(2, vec![Cube::parse("1-").unwrap()]).unwrap();
        let pla = PlaFile::from_on_covers(vec![c]).unwrap();
        assert_eq!(pla.num_inputs, 2);
        assert_eq!(pla.num_outputs, 1);
        assert_eq!(pla.output_names, vec!["y0"]);
        assert!(pla.dc.output(0).is_empty());
    }
}
