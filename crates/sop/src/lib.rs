//! # brel-sop
//!
//! Two-level (sum-of-products) logic layer used throughout the BREL
//! reproduction:
//!
//! * [`Cube`] — a product term in positional-cube notation,
//! * [`Cover`] — a set of cubes denoting their disjunction,
//! * [`MultiCover`] — a multiple-output cover (one output column per cube),
//! * ESPRESSO-style operations (`expand`, `reduce`, `irredundant`) against
//!   an incompletely specified function given by BDD on/dc sets
//!   ([`minimize`]),
//! * a PLA-like text reader/writer ([`pla`]).
//!
//! The paper's quality metrics `CB` (cubes) and `LIT` (literals) of Table 2
//! are computed on these covers; the gyocro baseline (`brel-gyocro`)
//! performs its reduce–expand–irredundant loop on [`MultiCover`]s.
//!
//! ```
//! use brel_sop::{Cube, Cover};
//!
//! // f = a·b' + c  over three variables
//! let cover = Cover::from_cubes(3, vec![
//!     Cube::parse("10-").unwrap(),
//!     Cube::parse("--1").unwrap(),
//! ]).unwrap();
//! assert_eq!(cover.num_cubes(), 2);
//! assert_eq!(cover.num_literals(), 3);
//! assert!(cover.eval(&[true, false, false]));
//! assert!(!cover.eval(&[false, true, false]));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cover;
mod cube;
pub mod minimize;
mod multi;
pub mod pla;

pub use cover::Cover;
pub use cube::{Cube, CubeValue, ParseCubeError};
pub use multi::MultiCover;

/// Errors produced by cover constructors and the PLA reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SopError {
    /// A cube has a different width than the cover it is inserted into.
    WidthMismatch {
        /// Width expected by the cover.
        expected: usize,
        /// Width of the offending cube.
        found: usize,
    },
    /// The PLA text was malformed.
    Parse(String),
}

impl std::fmt::Display for SopError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SopError::WidthMismatch { expected, found } => {
                write!(
                    f,
                    "cube width {found} does not match cover width {expected}"
                )
            }
            SopError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for SopError {}
