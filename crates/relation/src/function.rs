//! Multiple-output Boolean functions over the input variables of a space.

use brel_bdd::{Bdd, Var};
use brel_sop::{Cover, MultiCover};

use crate::error::RelationError;
use crate::space::RelationSpace;

/// A completely specified multiple-output function `F : 𝔹ⁿ → 𝔹ᵐ`, stored as
/// one BDD per output over the input variables of a [`RelationSpace`]
/// (Definition 4.3 of the paper).
///
/// Multiple-output functions are both the *solutions* returned by the BR
/// solvers and the leaves of the semilattice of well-defined relations
/// (Theorem 5.1).
#[derive(Debug, Clone)]
pub struct MultiOutputFunction {
    space: RelationSpace,
    outputs: Vec<Bdd>,
}

impl MultiOutputFunction {
    /// Creates a function from one BDD per output.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DimensionMismatch`] if the number of BDDs
    /// differs from the number of outputs of the space, and
    /// [`RelationError::Parse`] if an output depends on an output variable.
    pub fn new(space: &RelationSpace, outputs: Vec<Bdd>) -> Result<Self, RelationError> {
        if outputs.len() != space.num_outputs() {
            return Err(RelationError::DimensionMismatch {
                expected: space.num_outputs(),
                found: outputs.len(),
            });
        }
        for f in &outputs {
            let support = f.support();
            if support.iter().any(|v| space.output_vars().contains(v)) {
                return Err(RelationError::Parse(
                    "output function depends on an output variable".to_string(),
                ));
            }
        }
        Ok(MultiOutputFunction {
            space: space.clone(),
            outputs,
        })
    }

    /// The space this function belongs to.
    pub fn space(&self) -> &RelationSpace {
        &self.space
    }

    /// The per-output BDDs.
    pub fn outputs(&self) -> &[Bdd] {
        &self.outputs
    }

    /// The BDD of output `i`.
    pub fn output(&self, i: usize) -> &Bdd {
        &self.outputs[i]
    }

    /// Evaluates the function on an input vertex.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DimensionMismatch`] if `input` has the wrong
    /// length.
    pub fn eval(&self, input: &[bool]) -> Result<Vec<bool>, RelationError> {
        if input.len() != self.space.num_inputs() {
            return Err(RelationError::DimensionMismatch {
                expected: self.space.num_inputs(),
                found: input.len(),
            });
        }
        let asg = self
            .space
            .full_assignment(input, &vec![false; self.space.num_outputs()]);
        Ok(self.outputs.iter().map(|f| f.eval(&asg)).collect())
    }

    /// The characteristic function of the function seen as a relation:
    /// `⋀ᵢ (yᵢ ≡ fᵢ(X))`.
    pub fn characteristic(&self) -> Bdd {
        let mut acc = self.space.mgr().one();
        for (i, f) in self.outputs.iter().enumerate() {
            let y = self.space.output(i);
            acc = acc.and(&y.iff(f));
        }
        acc
    }

    /// Sum of the BDD sizes of the outputs — the paper's area-oriented cost.
    pub fn sum_of_sizes(&self) -> usize {
        self.outputs.iter().map(Bdd::size).sum()
    }

    /// Sum of squared BDD sizes — the paper's delay-oriented (balancing)
    /// cost.
    pub fn sum_of_squared_sizes(&self) -> usize {
        self.outputs.iter().map(|f| f.size() * f.size()).sum()
    }

    /// Shared BDD size of all outputs (common nodes counted once).
    pub fn shared_size(&self) -> usize {
        self.space.mgr().shared_size(&self.outputs)
    }

    /// Derives a two-level cover for every output via ISOP, giving the
    /// `CB`/`LIT` metrics of the paper's Table 2.
    pub fn to_multicover(&self) -> MultiCover {
        let input_vars: Vec<Var> = self.space.input_vars().to_vec();
        let covers: Vec<Cover> = self
            .outputs
            .iter()
            .map(|f| {
                let isop = f.isop();
                Cover::from_isop(&isop, &input_vars)
            })
            .collect();
        MultiCover::from_outputs(covers).expect("covers share the input width")
    }

    /// Total number of cubes of the ISOP covers.
    pub fn num_cubes(&self) -> usize {
        self.to_multicover().num_cubes()
    }

    /// Total number of literals of the ISOP covers.
    pub fn num_literals(&self) -> usize {
        self.to_multicover().num_literals()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_dimensions_and_support() {
        let space = RelationSpace::new(2, 2);
        let a = space.input(0);
        let b = space.input(1);
        assert!(MultiOutputFunction::new(&space, vec![a.clone()]).is_err());
        let y = space.output(0);
        assert!(MultiOutputFunction::new(&space, vec![a.clone(), y]).is_err());
        assert!(MultiOutputFunction::new(&space, vec![a, b]).is_ok());
    }

    #[test]
    fn eval_and_characteristic_agree() {
        let space = RelationSpace::new(2, 2);
        let a = space.input(0);
        let b = space.input(1);
        let f = MultiOutputFunction::new(&space, vec![a.and(&b), a.xor(&b)]).unwrap();
        let chi = f.characteristic();
        for input in space.enumerate_inputs() {
            let out = f.eval(&input).unwrap();
            for candidate in space.enumerate_outputs() {
                let asg = space.full_assignment(&input, &candidate);
                assert_eq!(chi.eval(&asg), candidate == out);
            }
        }
    }

    #[test]
    fn characteristic_counts_one_output_per_input() {
        let space = RelationSpace::new(3, 2);
        let a = space.input(0);
        let c = space.input(2);
        let f = MultiOutputFunction::new(&space, vec![a.clone(), a.or(&c)]).unwrap();
        let chi = f.characteristic();
        let total_vars = space.num_inputs() + space.num_outputs();
        assert_eq!(chi.sat_count(total_vars), 1 << space.num_inputs());
    }

    #[test]
    fn cost_metrics() {
        let space = RelationSpace::new(2, 2);
        let a = space.input(0);
        let b = space.input(1);
        let f = MultiOutputFunction::new(&space, vec![a.and(&b), space.mgr().one()]).unwrap();
        assert_eq!(f.sum_of_sizes(), 2);
        assert_eq!(f.sum_of_squared_sizes(), 4);
        assert!(f.shared_size() <= f.sum_of_sizes());
        let mc = f.to_multicover();
        assert_eq!(mc.num_outputs(), 2);
        assert_eq!(f.num_literals(), 2);
        assert_eq!(f.num_cubes(), 2, "a·b plus the universal cube");
    }

    #[test]
    fn eval_checks_arity() {
        let space = RelationSpace::new(2, 1);
        let a = space.input(0);
        let f = MultiOutputFunction::new(&space, vec![a]).unwrap();
        assert!(f.eval(&[true]).is_err());
        assert_eq!(f.eval(&[true, false]).unwrap(), vec![true]);
    }
}
