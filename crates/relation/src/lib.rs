//! # brel-relation
//!
//! The Boolean-relation domain of the BREL paper: Boolean relations
//! represented by BDD characteristic functions, incompletely specified
//! functions (ISF), multiple-output ISFs (MISF), multiple-output functions,
//! and the operations the solver is built from:
//!
//! * well-definedness and functionality tests (Definition 4.6),
//! * projection onto an output and the MISF over-approximation
//!   (Definitions 5.1 and 5.2, Properties 5.2 and 5.3),
//! * compatibility and the incompatibility set `Incomp(F, R) = F \ R`
//!   (Definition 5.3),
//! * the `Split` operation that partitions the compatible functions
//!   (Definition 5.4, Theorem 5.2),
//! * a tabular reader/writer using the same notation as the paper's
//!   examples.
//!
//! ```
//! use brel_relation::{RelationSpace, BooleanRelation};
//!
//! // The relation of Fig. 1a: 10 → {00, 11}, 11 → {10, 11}, others → single vertex.
//! let space = RelationSpace::new(2, 2);
//! let rel = BooleanRelation::from_table(
//!     &space,
//!     "00 : {00}\n01 : {00}\n10 : {00, 11}\n11 : {10, 11}",
//! ).unwrap();
//! assert!(rel.is_well_defined());
//! assert!(!rel.is_function());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod function;
mod isf;
mod misf;
mod relation;
mod space;
mod table;

pub use error::RelationError;
pub use function::MultiOutputFunction;
pub use isf::Isf;
pub use misf::Misf;
pub use relation::{BooleanRelation, RelationRow};
pub use space::RelationSpace;
