//! Boolean relations represented by BDD characteristic functions.

use std::fmt;

use brel_bdd::{Bdd, PathCube, Var};

use crate::error::RelationError;
use crate::function::MultiOutputFunction;
use crate::isf::Isf;
use crate::misf::Misf;
use crate::space::RelationSpace;

/// One tabular row of a relation: an input vertex and the set of output
/// vertices it is related to.
pub type RelationRow = (Vec<bool>, Vec<Vec<bool>>);

/// A Boolean relation `R ⊆ 𝔹ⁿ × 𝔹ᵐ` stored as its characteristic function
/// `χR : 𝔹ⁿ⁺ᵐ → 𝔹` (Definitions 4.6 and 6.1 of the paper).
#[derive(Debug, Clone)]
pub struct BooleanRelation {
    space: RelationSpace,
    chi: Bdd,
}

impl PartialEq for BooleanRelation {
    fn eq(&self, other: &Self) -> bool {
        self.space.same_space(&other.space) && self.chi == other.chi
    }
}

impl Eq for BooleanRelation {}

impl BooleanRelation {
    /// The universal relation `𝔹ⁿ × 𝔹ᵐ` (the top of the semilattice).
    pub fn full(space: &RelationSpace) -> Self {
        BooleanRelation {
            space: space.clone(),
            chi: space.mgr().one(),
        }
    }

    /// The empty relation (not well defined).
    pub fn empty(space: &RelationSpace) -> Self {
        BooleanRelation {
            space: space.clone(),
            chi: space.mgr().zero(),
        }
    }

    /// Wraps an explicit characteristic function.
    pub fn from_characteristic(space: &RelationSpace, chi: Bdd) -> Self {
        BooleanRelation {
            space: space.clone(),
            chi,
        }
    }

    /// Builds a relation from explicit `(input vertex, output vertex)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DimensionMismatch`] if any vertex has the
    /// wrong arity.
    pub fn from_pairs(
        space: &RelationSpace,
        pairs: &[(Vec<bool>, Vec<bool>)],
    ) -> Result<Self, RelationError> {
        let mut chi = space.mgr().zero();
        for (x, y) in pairs {
            let xin = space.input_minterm(x)?;
            let yout = space.output_minterm(y)?;
            chi = chi.or(&xin.and(&yout));
        }
        Ok(BooleanRelation {
            space: space.clone(),
            chi,
        })
    }

    /// Builds the relation of a multiple-output *function* (the functional
    /// relation `⋀ᵢ yᵢ ≡ fᵢ(X)`).
    pub fn from_function(f: &MultiOutputFunction) -> Self {
        BooleanRelation {
            space: f.space().clone(),
            chi: f.characteristic(),
        }
    }

    /// The space of the relation.
    pub fn space(&self) -> &RelationSpace {
        &self.space
    }

    /// The characteristic function.
    pub fn characteristic(&self) -> &Bdd {
        &self.chi
    }

    /// BDD size of the characteristic function.
    pub fn size(&self) -> usize {
        self.chi.size()
    }

    /// Returns `true` if the pair `(x, y)` belongs to the relation.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DimensionMismatch`] on arity mismatch.
    pub fn contains(&self, input: &[bool], output: &[bool]) -> Result<bool, RelationError> {
        if input.len() != self.space.num_inputs() {
            return Err(RelationError::DimensionMismatch {
                expected: self.space.num_inputs(),
                found: input.len(),
            });
        }
        if output.len() != self.space.num_outputs() {
            return Err(RelationError::DimensionMismatch {
                expected: self.space.num_outputs(),
                found: output.len(),
            });
        }
        let asg = self.space.full_assignment(input, output);
        Ok(self.chi.eval(&asg))
    }

    /// The output vertices related to an input vertex.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DimensionMismatch`] on arity mismatch, or
    /// [`RelationError::TooLarge`] if the output space cannot be enumerated.
    pub fn image(&self, input: &[bool]) -> Result<Vec<Vec<bool>>, RelationError> {
        if input.len() != self.space.num_inputs() {
            return Err(RelationError::DimensionMismatch {
                expected: self.space.num_inputs(),
                found: input.len(),
            });
        }
        if self.space.num_outputs() > 24 {
            return Err(RelationError::TooLarge {
                vars: self.space.num_outputs(),
                limit: 24,
            });
        }
        let mut out = Vec::new();
        for candidate in self.space.enumerate_outputs() {
            if self.contains(input, &candidate)? {
                out.push(candidate);
            }
        }
        Ok(out)
    }

    /// Number of `(x, y)` pairs in the relation.
    pub fn num_pairs(&self) -> u128 {
        self.chi
            .sat_count(self.space.num_inputs() + self.space.num_outputs())
    }

    /// Union of two relations over the same space.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::SpaceMismatch`] if the spaces differ.
    pub fn union(&self, other: &BooleanRelation) -> Result<BooleanRelation, RelationError> {
        if !self.space.same_space(&other.space) {
            return Err(RelationError::SpaceMismatch);
        }
        Ok(BooleanRelation {
            space: self.space.clone(),
            chi: self.chi.or(&other.chi),
        })
    }

    /// Intersection of two relations over the same space (the natural join
    /// over all variables, Definition 4.7).
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::SpaceMismatch`] if the spaces differ.
    pub fn intersection(&self, other: &BooleanRelation) -> Result<BooleanRelation, RelationError> {
        if !self.space.same_space(&other.space) {
            return Err(RelationError::SpaceMismatch);
        }
        Ok(BooleanRelation {
            space: self.space.clone(),
            chi: self.chi.and(&other.chi),
        })
    }

    /// Returns `true` if `self ⊆ other`.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::SpaceMismatch`] if the spaces differ.
    pub fn is_subset_of(&self, other: &BooleanRelation) -> Result<bool, RelationError> {
        if !self.space.same_space(&other.space) {
            return Err(RelationError::SpaceMismatch);
        }
        Ok(self.chi.is_subset_of(&other.chi))
    }

    /// Well-definedness (left-totality): every input vertex has at least one
    /// related output vertex (Definition 4.6).
    pub fn is_well_defined(&self) -> bool {
        let projected = self.chi.exists(self.space.output_vars());
        projected.is_one()
    }

    /// The set of input vertices with no related output vertex (empty iff
    /// the relation is well defined).
    pub fn undefined_inputs(&self) -> Bdd {
        self.chi.exists(self.space.output_vars()).complement()
    }

    /// Returns `true` if the relation is functional: every input vertex is
    /// related to exactly one output vertex.
    pub fn is_function(&self) -> bool {
        if !self.is_well_defined() {
            return false;
        }
        // Functional iff no output projection has {0,1} flexibility anywhere:
        // two distinct related outputs would differ in some output bit.
        (0..self.space.num_outputs()).all(|i| self.projection_flexible_inputs(i).is_zero())
    }

    /// Inputs whose projection onto output `i` can take both values
    /// (`(R ↓ yᵢ)(x) = {0, 1}` in the paper's notation). These are the only
    /// candidates for the `Split` operation (Theorem 5.2).
    pub fn projection_flexible_inputs(&self, output: usize) -> Bdd {
        let yi = self.space.output_var(output);
        let others: Vec<Var> = self
            .space
            .output_vars()
            .iter()
            .copied()
            .filter(|&v| v != yi)
            .collect();
        let can1 = self
            .chi
            .and(&self.space.output(output))
            .exists(&others)
            .exists(&[yi]);
        let can0 = self
            .chi
            .and(&self.space.output(output).complement())
            .exists(&others)
            .exists(&[yi]);
        can0.and(&can1)
    }

    /// Projection of the relation onto output `i` as an ISF
    /// (Definition 5.1): the onset are inputs that can only map to 1, the
    /// offset those that can only map to 0, the rest is don't care.
    pub fn projection(&self, output: usize) -> Isf {
        let yi = self.space.output_var(output);
        let others: Vec<Var> = self
            .space
            .output_vars()
            .iter()
            .copied()
            .filter(|&v| v != yi)
            .collect();
        let can1 = self
            .chi
            .and(&self.space.output(output))
            .exists(&others)
            .exists(&[yi]);
        let can0 = self
            .chi
            .and(&self.space.output(output).complement())
            .exists(&others)
            .exists(&[yi]);
        let on = can1.diff(&can0);
        let dc = can1.and(&can0);
        Isf::new(&self.space, on, dc)
    }

    /// The MISF over-approximation of the relation obtained by projecting
    /// every output (Definition 5.2). `R ⊆ MISF_R` (Property 5.2) and no
    /// smaller MISF covers `R` (Property 5.3).
    pub fn to_misf(&self) -> Misf {
        let isfs = (0..self.space.num_outputs())
            .map(|i| self.projection(i))
            .collect();
        Misf::new(&self.space, isfs)
    }

    /// Compatibility of a multiple-output function with the relation
    /// (Definition 5.3): `F` is compatible iff the functional relation of
    /// `F` is contained in `R`.
    pub fn is_compatible(&self, f: &MultiOutputFunction) -> bool {
        f.characteristic().is_subset_of(&self.chi)
    }

    /// The incompatibility set `Incomp(F, R) = F \ R` as a characteristic
    /// function over inputs and outputs.
    pub fn incompatibility(&self, f: &MultiOutputFunction) -> Bdd {
        f.characteristic().diff(&self.chi)
    }

    /// The set of *input* vertices on which `F` conflicts with the relation
    /// (`∃Y Incomp(F, R)`, used by the split-point selection of §7.4).
    pub fn conflicting_inputs(&self, f: &MultiOutputFunction) -> Bdd {
        self.incompatibility(f).exists(self.space.output_vars())
    }

    /// The `Split` operation of Definition 5.4: removes the pair
    /// `(x, …, yᵢ = 1, …)` from one copy and `(x, …, yᵢ = 0, …)` from the
    /// other, partitioning the compatible functions of `R` (Property 5.4).
    ///
    /// Returns `(R_{x ȳᵢ}, R_{x yᵢ})`: the first component forbids `yᵢ = 1`
    /// at `x`, the second forbids `yᵢ = 0` at `x`.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DimensionMismatch`] if `input` has the wrong
    /// arity.
    pub fn split(
        &self,
        input: &[bool],
        output: usize,
    ) -> Result<(BooleanRelation, BooleanRelation), RelationError> {
        let x = self.space.input_minterm(input)?;
        let y = self.space.output(output);
        // R_{x ȳ}: drop (x, y_i = 1); R_{x y}: drop (x, y_i = 0).
        let drop_pos = x.and(&y);
        let drop_neg = x.and(&y.complement());
        let r_neg = BooleanRelation {
            space: self.space.clone(),
            chi: self.chi.diff(&drop_pos),
        };
        let r_pos = BooleanRelation {
            space: self.space.clone(),
            chi: self.chi.diff(&drop_neg),
        };
        Ok((r_neg, r_pos))
    }

    /// Selects a split point following the heuristic of Section 7.4: take
    /// the shortest path (largest cube) of the conflicting-input set, fill
    /// its free positions with 1, and pick the first output whose projection
    /// still has `{0, 1}` flexibility at that vertex.
    ///
    /// Returns `None` if there is no conflict or no output satisfies
    /// Theorem 5.2 at the chosen vertex.
    pub fn select_split_point(&self, conflicts: &Bdd) -> Option<(Vec<bool>, usize)> {
        if conflicts.is_zero() {
            return None;
        }
        let cube: PathCube = conflicts.shortest_path()?;
        // Build the input vertex: fixed positions from the cube, 1 elsewhere.
        let input: Vec<bool> = self
            .space
            .input_vars()
            .iter()
            .map(|&v| cube.value_of(v).unwrap_or(true))
            .collect();
        let x = self.space.input_minterm(&input).ok()?;
        for i in 0..self.space.num_outputs() {
            let flexible = self.projection_flexible_inputs(i);
            if !x.and(&flexible).is_zero() {
                return Some((input, i));
            }
        }
        // Fall back: try any conflicting vertex (rare; the largest-cube
        // completion may have landed on a vertex without flexibility).
        let over_inputs = conflicts.exists(self.space.output_vars());
        let assignments = over_inputs.pick_cube()?;
        let input: Vec<bool> = self
            .space
            .input_vars()
            .iter()
            .map(|&v| assignments.value_of(v).unwrap_or(true))
            .collect();
        let x = self.space.input_minterm(&input).ok()?;
        (0..self.space.num_outputs()).find_map(|i| {
            let flexible = self.projection_flexible_inputs(i);
            if !x.and(&flexible).is_zero() {
                Some((input.clone(), i))
            } else {
                None
            }
        })
    }

    /// Constrains the relation so that output `i` implements the function
    /// `f` (over the input variables): `R ∧ (yᵢ ≡ f)`. Used by the quick
    /// solver to propagate decisions to the remaining outputs (Fig. 4).
    pub fn constrain_output(&self, output: usize, f: &Bdd) -> BooleanRelation {
        let y = self.space.output(output);
        BooleanRelation {
            space: self.space.clone(),
            chi: self.chi.and(&y.iff(f)),
        }
    }

    /// If the relation is functional, extracts the unique compatible
    /// multiple-output function.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::NotWellDefined`] if the relation is not a
    /// function.
    pub fn to_function(&self) -> Result<MultiOutputFunction, RelationError> {
        if !self.is_function() {
            return Err(RelationError::NotWellDefined);
        }
        let outputs: Vec<Bdd> = (0..self.space.num_outputs())
            .map(|i| self.projection(i).on().clone())
            .collect();
        MultiOutputFunction::new(&self.space, outputs)
    }

    /// Exports the relation as owned [`RelationRow`]s — the tabular
    /// representation used throughout the paper's examples — and the
    /// inverse of [`BooleanRelation::from_rows`]. Rows are emitted for
    /// every input vertex in enumeration order (rows with an empty image
    /// mark inputs on which the relation is not well defined), so
    /// `from_rows(space, &r.to_rows()?)` reconstructs `r` exactly. This is
    /// the serialization boundary used to move relations across BDD
    /// managers (and threads).
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::TooLarge`] if the space cannot be
    /// enumerated exhaustively.
    pub fn to_rows(&self) -> Result<Vec<RelationRow>, RelationError> {
        if self.space.num_inputs() > 16 || self.space.num_outputs() > 16 {
            return Err(RelationError::TooLarge {
                vars: self.space.num_inputs().max(self.space.num_outputs()),
                limit: 16,
            });
        }
        let mut rows = Vec::new();
        for input in self.space.enumerate_inputs() {
            let image = self.image(&input)?;
            rows.push((input, image));
        }
        Ok(rows)
    }

    /// Copies `source` into `space` by structural BDD import
    /// ([`brel_bdd::BddSession::import`]): one `mk` per node of the
    /// characteristic function, no enumeration, no 16-variable ceiling.
    /// This is the cheap way to move a relation across sessions when both
    /// order their variables identically — the engine's wide mode ships
    /// stolen subproblems this way.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DimensionMismatch`] if the spaces
    /// disagree on the input or output arity.
    pub fn import_into(
        space: &RelationSpace,
        source: &BooleanRelation,
    ) -> Result<Self, RelationError> {
        if space.num_inputs() != source.space.num_inputs() {
            return Err(RelationError::DimensionMismatch {
                expected: space.num_inputs(),
                found: source.space.num_inputs(),
            });
        }
        if space.num_outputs() != source.space.num_outputs() {
            return Err(RelationError::DimensionMismatch {
                expected: space.num_outputs(),
                found: source.space.num_outputs(),
            });
        }
        Ok(BooleanRelation {
            space: space.clone(),
            chi: space.mgr().import(source.characteristic()),
        })
    }

    /// Builds a relation from `(input vertex, output vertices)` rows, the
    /// inverse of [`BooleanRelation::to_rows`]. Rows with an empty image
    /// contribute no pairs; missing input vertices are simply unrelated.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DimensionMismatch`] if any vertex has the
    /// wrong arity.
    pub fn from_rows(space: &RelationSpace, rows: &[RelationRow]) -> Result<Self, RelationError> {
        let mut chi = space.mgr().zero();
        for (input, outputs) in rows {
            let xin = space.input_minterm(input)?;
            for output in outputs {
                let yout = space.output_minterm(output)?;
                chi = chi.or(&xin.and(&yout));
            }
        }
        Ok(BooleanRelation {
            space: space.clone(),
            chi,
        })
    }
}

impl fmt::Display for BooleanRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_rows() {
            Ok(rows) => {
                for (input, outputs) in rows {
                    let x: String = input.iter().map(|&b| if b { '1' } else { '0' }).collect();
                    let ys: Vec<String> = outputs
                        .iter()
                        .map(|o| o.iter().map(|&b| if b { '1' } else { '0' }).collect())
                        .collect();
                    writeln!(f, "{x} : {{{}}}", ys.join(", "))?;
                }
                Ok(())
            }
            Err(_) => writeln!(
                f,
                "<relation over {}+{} variables, {} pairs>",
                self.space.num_inputs(),
                self.space.num_outputs(),
                self.num_pairs()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The relation of Fig. 1a of the paper.
    fn fig1(space: &RelationSpace) -> BooleanRelation {
        BooleanRelation::from_pairs(
            space,
            &[
                (vec![false, false], vec![false, false]),
                (vec![false, true], vec![false, false]),
                (vec![true, false], vec![false, false]),
                (vec![true, false], vec![true, true]),
                (vec![true, true], vec![true, false]),
                (vec![true, true], vec![true, true]),
            ],
        )
        .unwrap()
    }

    /// Reads a vertex like "10" into bits (index 0 first).
    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn membership_and_image() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        assert!(r.contains(&bits("10"), &bits("11")).unwrap());
        assert!(!r.contains(&bits("10"), &bits("10")).unwrap());
        let image = r.image(&bits("10")).unwrap();
        assert_eq!(image.len(), 2);
        assert_eq!(r.num_pairs(), 6);
    }

    #[test]
    fn well_definedness_and_functionality() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        assert!(r.is_well_defined());
        assert!(!r.is_function());
        assert!(r.undefined_inputs().is_zero());
        // Removing all outputs of vertex 00 breaks left-totality.
        let x00 = space.input_minterm(&bits("00")).unwrap();
        let broken = BooleanRelation::from_characteristic(&space, r.characteristic().diff(&x00));
        assert!(!broken.is_well_defined());
        assert!(!broken.undefined_inputs().is_zero());
        assert!(!broken.is_function());
    }

    #[test]
    fn functional_relation_round_trip() {
        let space = RelationSpace::new(2, 2);
        let a = space.input(0);
        let b = space.input(1);
        let f = MultiOutputFunction::new(&space, vec![a.and(&b), a.xor(&b)]).unwrap();
        let r = BooleanRelation::from_function(&f);
        assert!(r.is_function());
        assert!(r.is_well_defined());
        let back = r.to_function().unwrap();
        assert_eq!(back.output(0), f.output(0));
        assert_eq!(back.output(1), f.output(1));
    }

    #[test]
    fn projection_matches_paper_example() {
        // Example 5.1 of the paper: projections of the Fig. 1a relation.
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let p0 = r.projection(0); // output y1 in the paper
                                  // y1: 00 -> 0, 01 -> 0, 10 -> {0,1}, 11 -> 1
        assert_eq!(p0.values_at(&bits("00")).unwrap(), (true, false));
        assert_eq!(p0.values_at(&bits("01")).unwrap(), (true, false));
        assert_eq!(p0.values_at(&bits("10")).unwrap(), (true, true));
        assert_eq!(p0.values_at(&bits("11")).unwrap(), (false, true));
        let p1 = r.projection(1); // output y2
                                  // y2: 00 -> 0, 01 -> 0, 10 -> {0,1}, 11 -> {0,1}
        assert_eq!(p1.values_at(&bits("10")).unwrap(), (true, true));
        assert_eq!(p1.values_at(&bits("11")).unwrap(), (true, true));
    }

    #[test]
    fn misf_overapproximates_and_is_tightest() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let misf = r.to_misf();
        let misf_rel = misf.to_relation();
        // Property 5.2: R ⊆ MISF_R.
        assert!(r.is_subset_of(&misf_rel).unwrap());
        // Example 5.2: MISF_R relates 10 to all four output vertices.
        assert_eq!(misf_rel.image(&bits("10")).unwrap().len(), 4);
        // The projections of MISF_R equal the projections of R (Property 5.3).
        for i in 0..2 {
            assert_eq!(misf_rel.projection(i).on(), r.projection(i).on());
            assert_eq!(misf_rel.projection(i).dc(), r.projection(i).dc());
        }
    }

    #[test]
    fn compatibility_and_incompatibility() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let a = space.input(0);
        let b = space.input(1);
        // Fig. 1b: y1 = a·b, y2 = 0  — compatible.
        let good = MultiOutputFunction::new(&space, vec![a.and(&b), space.mgr().zero()]).unwrap();
        assert!(r.is_compatible(&good));
        assert!(r.incompatibility(&good).is_zero());
        // Example 5.4: y1 = a, y2 = 0  maps 10 → 10 which is not in R(10).
        let bad = MultiOutputFunction::new(&space, vec![a.clone(), space.mgr().zero()]).unwrap();
        assert!(!r.is_compatible(&bad));
        let incomp = r.incompatibility(&bad);
        let asg = space.full_assignment(&bits("10"), &bits("10"));
        assert!(incomp.eval(&asg));
        assert_eq!(incomp.sat_count(4), 1);
        let conflicts = r.conflicting_inputs(&bad);
        assert_eq!(conflicts.sat_count(4) >> space.num_outputs(), 1);
    }

    #[test]
    fn split_partitions_compatible_functions() {
        // Example 5.5: split on vertex 10 and output y1.
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let (r_neg, r_pos) = r.split(&bits("10"), 0).unwrap();
        assert!(r_neg.is_well_defined());
        assert!(r_pos.is_well_defined());
        // Both are strict subsets of R.
        assert!(r_neg.is_subset_of(&r).unwrap());
        assert!(r_pos.is_subset_of(&r).unwrap());
        assert!(r_neg != r && r_pos != r);
        // Their union is R and their images at 10 are disjoint.
        assert_eq!(r_neg.union(&r_pos).unwrap(), r);
        let im_neg = r_neg.image(&bits("10")).unwrap();
        let im_pos = r_pos.image(&bits("10")).unwrap();
        assert!(im_neg.iter().all(|y| !im_pos.contains(y)));
        // R_{x ȳ1} keeps only 00 at vertex 10; R_{x y1} keeps only 11.
        assert_eq!(im_neg, vec![bits("00")]);
        assert_eq!(im_pos, vec![bits("11")]);
    }

    #[test]
    fn split_on_vertex_without_flexibility_is_not_well_defined() {
        // Example 5.6: splitting 11 on y1 gives a non-well-defined branch.
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let (r_neg, r_pos) = r.split(&bits("11"), 0).unwrap();
        assert!(!r_neg.is_well_defined(), "y1 cannot take 0 at vertex 11");
        assert!(r_pos.is_well_defined());
        assert_eq!(r_pos, r, "the other branch is R itself");
    }

    #[test]
    fn select_split_point_picks_flexible_vertex() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let a = space.input(0);
        let bad = MultiOutputFunction::new(&space, vec![a.clone(), space.mgr().zero()]).unwrap();
        let conflicts = r.conflicting_inputs(&bad);
        let (vertex, output) = r.select_split_point(&conflicts).expect("conflict exists");
        assert_eq!(vertex, bits("10"));
        // Both outputs have flexibility at 10; the first is picked.
        assert_eq!(output, 0);
        // No conflicts → no split point.
        assert!(r.select_split_point(&space.mgr().zero()).is_none());
    }

    #[test]
    fn constrain_output_propagates_choice() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let a = space.input(0);
        let b = space.input(1);
        // Force y1 = a·b; vertex 10 must now map to 00 only.
        let constrained = r.constrain_output(0, &a.and(&b));
        assert!(constrained.is_well_defined());
        assert_eq!(constrained.image(&bits("10")).unwrap(), vec![bits("00")]);
    }

    #[test]
    fn union_intersection_and_space_mismatch() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let full = BooleanRelation::full(&space);
        let empty = BooleanRelation::empty(&space);
        assert_eq!(r.union(&empty).unwrap(), r);
        assert_eq!(r.intersection(&full).unwrap(), r);
        assert!(empty.is_subset_of(&r).unwrap());
        let other_space = RelationSpace::new(2, 2);
        let other = BooleanRelation::full(&other_space);
        assert!(r.union(&other).is_err());
        assert!(r.intersection(&other).is_err());
        assert!(r.is_subset_of(&other).is_err());
    }

    #[test]
    fn rows_round_trip_is_exact() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let rows = r.to_rows().unwrap();
        assert_eq!(rows.len(), 4, "one row per input vertex");
        // Rehydrating into a *fresh* space (new BDD manager) preserves the
        // relation semantically: same table, same pair count.
        let fresh = RelationSpace::new(2, 2);
        let back = BooleanRelation::from_rows(&fresh, &rows).unwrap();
        assert_eq!(back.num_pairs(), r.num_pairs());
        assert_eq!(back.to_rows().unwrap(), rows);
        // Round-tripping within the same space is the identity.
        assert_eq!(BooleanRelation::from_rows(&space, &rows).unwrap(), r);
        // A not-well-defined relation survives too: empty images round-trip.
        let broken = BooleanRelation::from_rows(
            &space,
            &[(bits("00"), vec![]), (bits("11"), vec![bits("01")])],
        )
        .unwrap();
        assert!(!broken.is_well_defined());
        assert_eq!(
            BooleanRelation::from_rows(&space, &broken.to_rows().unwrap()).unwrap(),
            broken
        );
        // Arity errors surface as DimensionMismatch.
        assert!(BooleanRelation::from_rows(&space, &[(bits("0"), vec![])]).is_err());
        assert!(BooleanRelation::from_rows(&space, &[(bits("00"), vec![bits("010")])]).is_err());
    }

    #[test]
    fn display_lists_rows() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let text = r.to_string();
        assert!(text.contains("10 : {00, 11}"));
        assert!(text.contains("11 : {10, 11}"));
    }
}
