//! Incompletely specified functions (ISF).

use brel_bdd::Bdd;

use crate::error::RelationError;
use crate::space::RelationSpace;

/// An incompletely specified function over the input variables of a
/// [`RelationSpace`]: a partition of the input space into onset, offset and
/// don't-care set (Definition 4.4 of the paper).
///
/// The ISF is stored as the pair `(on, dc)`; the offset is implicit
/// (`off = ¬(on ∪ dc)`).
#[derive(Debug, Clone)]
pub struct Isf {
    space: RelationSpace,
    on: Bdd,
    dc: Bdd,
}

impl Isf {
    /// Creates an ISF from its onset and don't-care set.
    ///
    /// Overlap between `on` and `dc` is resolved in favour of the onset
    /// (a minterm that must be 1 is not a don't care).
    pub fn new(space: &RelationSpace, on: Bdd, dc: Bdd) -> Self {
        let dc = dc.diff(&on);
        Isf {
            space: space.clone(),
            on,
            dc,
        }
    }

    /// Creates a completely specified ISF (empty don't-care set).
    pub fn completely_specified(space: &RelationSpace, on: Bdd) -> Self {
        let dc = space.mgr().zero();
        Isf {
            space: space.clone(),
            on,
            dc,
        }
    }

    /// The space this ISF belongs to.
    pub fn space(&self) -> &RelationSpace {
        &self.space
    }

    /// The onset: inputs that must map to 1.
    pub fn on(&self) -> &Bdd {
        &self.on
    }

    /// The don't-care set.
    pub fn dc(&self) -> &Bdd {
        &self.dc
    }

    /// The offset: inputs that must map to 0.
    pub fn off(&self) -> Bdd {
        self.on.or(&self.dc).complement()
    }

    /// The upper bound of the interval, `on ∪ dc`.
    pub fn upper(&self) -> Bdd {
        self.on.or(&self.dc)
    }

    /// Returns `true` if the don't-care set is empty.
    pub fn is_completely_specified(&self) -> bool {
        self.dc.is_zero()
    }

    /// Returns `true` if `f` implements the ISF: `on ⊆ f ⊆ on ∪ dc`.
    pub fn admits(&self, f: &Bdd) -> bool {
        self.on.is_subset_of(f) && f.is_subset_of(&self.upper())
    }

    /// The flexibility of the ISF at a given input vertex: the set of values
    /// `{0}`, `{1}` or `{0, 1}` the output may take.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DimensionMismatch`] if `input` has the wrong
    /// length.
    pub fn values_at(&self, input: &[bool]) -> Result<(bool, bool), RelationError> {
        if input.len() != self.space.num_inputs() {
            return Err(RelationError::DimensionMismatch {
                expected: self.space.num_inputs(),
                found: input.len(),
            });
        }
        let asg = self
            .space
            .full_assignment(input, &vec![false; self.space.num_outputs()]);
        let in_on = self.on.eval(&asg);
        let in_dc = self.dc.eval(&asg);
        // (may be 0, may be 1)
        Ok((!in_on, in_on || in_dc))
    }

    /// Number of non-essential input variables: variables `z` such that the
    /// interval `[∃z on, ∀z (on ∪ dc)]` is non-empty, meaning an
    /// implementation independent of `z` exists (cf. Section 7.5).
    pub fn non_essential_variables(&self) -> Vec<brel_bdd::Var> {
        let upper = self.upper();
        self.space
            .input_vars()
            .iter()
            .copied()
            .filter(|&z| {
                let lower_q = self.on.exists(&[z]);
                let upper_q = upper.forall(&[z]);
                lower_q.is_subset_of(&upper_q)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_membership() {
        let space = RelationSpace::new(2, 1);
        let a = space.input(0);
        let b = space.input(1);
        let on = a.and(&b);
        let dc = a.xor(&b);
        let isf = Isf::new(&space, on.clone(), dc);
        // The interval is [a·b, a+b]: a, b and a+b itself are implementations…
        assert!(isf.admits(&on));
        assert!(isf.admits(&a));
        assert!(isf.admits(&b));
        assert!(isf.admits(&a.or(&b)));
        // …but the tautology and ¬a are not.
        assert!(!isf.admits(&space.mgr().one()));
        assert!(!isf.admits(&a.complement()));
    }

    #[test]
    fn off_set_partition() {
        let space = RelationSpace::new(2, 1);
        let a = space.input(0);
        let b = space.input(1);
        let isf = Isf::new(&space, a.and(&b), a.xor(&b));
        let on = isf.on().clone();
        let dc = isf.dc().clone();
        let off = isf.off();
        // The three sets partition the input space.
        assert!(on.and(&dc).is_zero());
        assert!(on.and(&off).is_zero());
        assert!(dc.and(&off).is_zero());
        assert!(on.or(&dc).or(&off).is_one());
    }

    #[test]
    fn overlap_resolved_towards_onset() {
        let space = RelationSpace::new(1, 1);
        let a = space.input(0);
        let isf = Isf::new(&space, a.clone(), a.clone());
        assert!(isf.dc().is_zero());
        assert!(!isf.is_completely_specified() || isf.dc().is_zero());
    }

    #[test]
    fn values_at_reports_flexibility() {
        let space = RelationSpace::new(2, 1);
        let a = space.input(0);
        let b = space.input(1);
        let isf = Isf::new(&space, a.and(&b), a.xor(&b));
        // 11 -> must be 1
        assert_eq!(isf.values_at(&[true, true]).unwrap(), (false, true));
        // 10 -> don't care
        assert_eq!(isf.values_at(&[true, false]).unwrap(), (true, true));
        // 00 -> must be 0
        assert_eq!(isf.values_at(&[false, false]).unwrap(), (true, false));
        assert!(isf.values_at(&[true]).is_err());
    }

    #[test]
    fn non_essential_variable_detected() {
        let space = RelationSpace::new(2, 1);
        let a = space.input(0);
        let b = space.input(1);
        // on = a·b, dc = a·b' : output can be implemented as `a`, so b is
        // non-essential; a is essential.
        let on = a.and(&b);
        let dc = a.and(&b.complement());
        let isf = Isf::new(&space, on, dc);
        let non_essential = isf.non_essential_variables();
        assert!(non_essential.contains(&space.input_var(1)));
        assert!(!non_essential.contains(&space.input_var(0)));
    }
}
