//! Tabular text representation of relations, mirroring the notation used in
//! the paper's examples (`input : {output, output, …}`).

use crate::error::RelationError;
use crate::relation::BooleanRelation;
use crate::space::RelationSpace;

fn parse_vertex(text: &str, expected: usize, what: &str) -> Result<Vec<bool>, RelationError> {
    let text = text.trim();
    if text.len() != expected {
        return Err(RelationError::Parse(format!(
            "{what} vertex `{text}` must have {expected} bits"
        )));
    }
    text.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(RelationError::Parse(format!(
                "invalid bit `{other}` in {what} vertex `{text}`"
            ))),
        })
        .collect()
}

impl BooleanRelation {
    /// Parses a relation from its tabular description. Each non-empty line
    /// has the form `input : {output, output, …}`; the output set may also
    /// be written without braces. Lines starting with `#` are comments.
    ///
    /// ```
    /// use brel_relation::{BooleanRelation, RelationSpace};
    ///
    /// let space = RelationSpace::new(2, 2);
    /// let r = BooleanRelation::from_table(
    ///     &space,
    ///     "00:{00}\n01:{00}\n10:{00,11}\n11:{10,11}",
    /// ).unwrap();
    /// assert_eq!(r.num_pairs(), 6);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::Parse`] on malformed lines and
    /// [`RelationError::DimensionMismatch`] if a vertex has the wrong arity.
    pub fn from_table(space: &RelationSpace, text: &str) -> Result<Self, RelationError> {
        let mut pairs: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (lhs, rhs) = line
                .split_once(':')
                .ok_or_else(|| RelationError::Parse(format!("line `{line}` is missing `:`")))?;
            let input = parse_vertex(lhs, space.num_inputs(), "input")?;
            let rhs = rhs.trim().trim_start_matches('{').trim_end_matches('}');
            if rhs.trim().is_empty() {
                // An explicitly empty image: contributes no pairs (and makes
                // the relation not well defined unless covered elsewhere).
                continue;
            }
            for out_text in rhs.split(',') {
                let output = parse_vertex(out_text, space.num_outputs(), "output")?;
                pairs.push((input.clone(), output));
            }
        }
        BooleanRelation::from_pairs(space, &pairs)
    }

    /// Renders the relation in the same tabular syntax accepted by
    /// [`BooleanRelation::from_table`].
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::TooLarge`] if the space is too large to
    /// enumerate.
    pub fn to_table(&self) -> Result<String, RelationError> {
        let rows = self.to_rows()?;
        let mut out = String::new();
        for (input, outputs) in rows {
            let x: String = input.iter().map(|&b| if b { '1' } else { '0' }).collect();
            let ys: Vec<String> = outputs
                .iter()
                .map(|o| o.iter().map(|&b| if b { '1' } else { '0' }).collect())
                .collect();
            out.push_str(&format!("{x} : {{{}}}\n", ys.join(", ")));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_fig1_table() {
        let space = RelationSpace::new(2, 2);
        let r = BooleanRelation::from_table(
            &space,
            "# Fig. 1a\n00 : {00}\n01 : {00}\n10 : {00, 11}\n11 : {10, 11}\n",
        )
        .unwrap();
        assert!(r.is_well_defined());
        assert_eq!(r.num_pairs(), 6);
        assert_eq!(
            r.image(&[true, false]).unwrap(),
            vec![vec![false, false], vec![true, true]]
        );
    }

    #[test]
    fn round_trip() {
        let space = RelationSpace::new(2, 2);
        let text = "00 : {00}\n01 : {00}\n10 : {00, 11}\n11 : {10, 11}\n";
        let r = BooleanRelation::from_table(&space, text).unwrap();
        let rendered = r.to_table().unwrap();
        let r2 = BooleanRelation::from_table(&space, &rendered).unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn parse_errors() {
        let space = RelationSpace::new(2, 2);
        assert!(BooleanRelation::from_table(&space, "00 {00}").is_err());
        assert!(BooleanRelation::from_table(&space, "0 : {00}").is_err());
        assert!(BooleanRelation::from_table(&space, "00 : {0z}").is_err());
        assert!(BooleanRelation::from_table(&space, "00 : {000}").is_err());
    }

    #[test]
    fn empty_image_lines_are_allowed_but_not_well_defined() {
        let space = RelationSpace::new(1, 1);
        let r = BooleanRelation::from_table(&space, "0 : {}\n1 : {1}").unwrap();
        assert!(!r.is_well_defined());
        assert_eq!(r.num_pairs(), 1);
    }
}
