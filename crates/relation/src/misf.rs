//! Multiple-output incompletely specified functions (MISF).

use brel_bdd::Bdd;

use crate::error::RelationError;
use crate::function::MultiOutputFunction;
use crate::isf::Isf;
use crate::relation::BooleanRelation;
use crate::space::RelationSpace;

/// A multiple-output ISF: one [`Isf`] per output over a shared input space
/// (Definition 4.5 of the paper).
///
/// An MISF is exactly the class of relations whose flexibility is
/// expressible with per-output don't cares; the BREL solver repeatedly
/// over-approximates a relation by its MISF ([`BooleanRelation::to_misf`])
/// and minimizes the MISF output by output.
#[derive(Debug, Clone)]
pub struct Misf {
    space: RelationSpace,
    outputs: Vec<Isf>,
}

impl Misf {
    /// Bundles per-output ISFs into an MISF.
    ///
    /// # Panics
    ///
    /// Panics if the number of ISFs differs from the number of outputs of
    /// the space.
    pub fn new(space: &RelationSpace, outputs: Vec<Isf>) -> Self {
        assert_eq!(
            outputs.len(),
            space.num_outputs(),
            "one ISF per output is required"
        );
        Misf {
            space: space.clone(),
            outputs,
        }
    }

    /// The space of the MISF.
    pub fn space(&self) -> &RelationSpace {
        &self.space
    }

    /// The per-output ISFs.
    pub fn outputs(&self) -> &[Isf] {
        &self.outputs
    }

    /// The ISF of output `i`.
    pub fn output(&self, i: usize) -> &Isf {
        &self.outputs[i]
    }

    /// The characteristic function of the MISF seen as a Boolean relation
    /// (Definition 4.8): the natural join over the inputs of the per-output
    /// relations `Fyᵢ`.
    pub fn to_relation(&self) -> BooleanRelation {
        let mut chi = self.space.mgr().one();
        for (i, isf) in self.outputs.iter().enumerate() {
            let y = self.space.output(i);
            // (x, 1) ∈ Fy iff f(x) ∈ {1, -} ; (x, 0) ∈ Fy iff f(x) ∈ {0, -}.
            let allow1 = isf.upper();
            let allow0 = isf.on().complement();
            let fy = y.and(&allow1).or(&y.complement().and(&allow0));
            chi = chi.and(&fy);
        }
        BooleanRelation::from_characteristic(&self.space, chi)
    }

    /// Returns `true` if the multiple-output function implements every
    /// output interval.
    pub fn admits(&self, f: &MultiOutputFunction) -> bool {
        self.outputs
            .iter()
            .zip(f.outputs())
            .all(|(isf, g)| isf.admits(g))
    }

    /// The trivial implementation that picks the onset of each output
    /// (don't cares resolved to 0).
    ///
    /// # Errors
    ///
    /// Propagates [`RelationError`] from function construction (which cannot
    /// happen for well-formed ISFs).
    pub fn onset_implementation(&self) -> Result<MultiOutputFunction, RelationError> {
        let outputs: Vec<Bdd> = self.outputs.iter().map(|isf| isf.on().clone()).collect();
        MultiOutputFunction::new(&self.space, outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    /// The two ISFs of Example 4.1 of the paper (over two inputs):
    /// fy1: 00→1, 01→-, 10→0, 11→1 ; fy2: 00→0, 01→1, 10→-, 11→-.
    fn example41(space: &RelationSpace) -> Misf {
        let m = |s: &str| space.input_minterm(&bits(s)).unwrap();
        let on1 = m("00").or(&m("11"));
        let dc1 = m("01");
        let on2 = m("01");
        let dc2 = m("10").or(&m("11"));
        Misf::new(
            space,
            vec![Isf::new(space, on1, dc1), Isf::new(space, on2, dc2)],
        )
    }

    #[test]
    fn misf_as_relation_matches_example_41() {
        let space = RelationSpace::new(2, 2);
        let misf = example41(&space);
        let rel = misf.to_relation();
        // From the paper: 00 → {10}? No — outputs are (y1, y2):
        // 00 → y1=1, y2=0 → {10}; 01 → y1∈{1,-}→{0,1}, y2=1 → {01, 11};
        // 10 → y1=0, y2∈{0,1} → {00, 01}; 11 → y1=1, y2∈{0,1} → {10, 11}.
        assert_eq!(rel.image(&bits("00")).unwrap(), vec![bits("10")]);
        assert_eq!(rel.image(&bits("01")).unwrap().len(), 2);
        assert_eq!(rel.image(&bits("10")).unwrap().len(), 2);
        assert_eq!(rel.image(&bits("11")).unwrap().len(), 2);
        assert!(rel.is_well_defined());
    }

    #[test]
    fn admits_checks_every_output() {
        let space = RelationSpace::new(2, 2);
        let misf = example41(&space);
        let good = misf.onset_implementation().unwrap();
        assert!(misf.admits(&good));
        // An implementation violating output 0 at vertex 10 (must be 0).
        let bad = MultiOutputFunction::new(&space, vec![space.mgr().one(), good.output(1).clone()])
            .unwrap();
        assert!(!misf.admits(&bad));
    }

    #[test]
    fn onset_implementation_is_compatible_with_relation() {
        let space = RelationSpace::new(2, 2);
        let misf = example41(&space);
        let rel = misf.to_relation();
        let f = misf.onset_implementation().unwrap();
        assert!(rel.is_compatible(&f));
    }

    #[test]
    fn misf_of_a_relation_is_itself_when_dc_expressible() {
        // A relation that *is* an MISF: its MISF over-approximation is equal.
        let space = RelationSpace::new(2, 2);
        let misf = example41(&space);
        let rel = misf.to_relation();
        let again = rel.to_misf().to_relation();
        assert_eq!(rel, again);
    }

    #[test]
    #[should_panic]
    fn wrong_arity_panics() {
        let space = RelationSpace::new(2, 2);
        let on = space.mgr().zero();
        let isf = Isf::new(&space, on.clone(), on);
        let _ = Misf::new(&space, vec![isf]);
    }
}
