//! Error type of the relation layer.

use std::fmt;

/// Errors produced by relation constructors and solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// The relation is not well defined (some input vertex has no related
    /// output vertex), so it has no compatible function.
    NotWellDefined,
    /// Vector lengths do not match the number of inputs/outputs of the space.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Provided length.
        found: usize,
    },
    /// Two objects belong to different [`crate::RelationSpace`]s.
    SpaceMismatch,
    /// A textual description could not be parsed.
    Parse(String),
    /// A Boolean-equation system is inconsistent (has no solution).
    Inconsistent,
    /// An operation requires exhaustive enumeration but the space is too
    /// large for it.
    TooLarge {
        /// Number of variables requested.
        vars: usize,
        /// Supported maximum.
        limit: usize,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::NotWellDefined => {
                write!(
                    f,
                    "relation is not well defined (an input vertex has no image)"
                )
            }
            RelationError::DimensionMismatch { expected, found } => {
                write!(f, "expected a vector of length {expected}, found {found}")
            }
            RelationError::SpaceMismatch => {
                write!(f, "objects belong to different relation spaces")
            }
            RelationError::Parse(msg) => write!(f, "parse error: {msg}"),
            RelationError::Inconsistent => write!(f, "boolean system is inconsistent"),
            RelationError::TooLarge { vars, limit } => {
                write!(
                    f,
                    "operation requires enumerating {vars} variables, limit is {limit}"
                )
            }
        }
    }
}

impl std::error::Error for RelationError {}
