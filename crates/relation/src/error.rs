//! Error type of the relation layer.

use std::fmt;

use brel_bdd::BddError;

/// Errors produced by relation constructors and solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// The relation is not well defined (some input vertex has no related
    /// output vertex), so it has no compatible function.
    NotWellDefined,
    /// Vector lengths do not match the number of inputs/outputs of the space.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Provided length.
        found: usize,
    },
    /// Two objects belong to different [`crate::RelationSpace`]s.
    SpaceMismatch,
    /// A textual description could not be parsed.
    Parse(String),
    /// A Boolean-equation system is inconsistent (has no solution).
    Inconsistent,
    /// An operation requires exhaustive enumeration but the space is too
    /// large for it.
    TooLarge {
        /// Number of variables requested.
        vars: usize,
        /// Supported maximum.
        limit: usize,
    },
    /// The branch-and-bound exploration found an incompatible candidate but
    /// no vertex/output pair satisfying Theorem 5.2 to split on. For a
    /// well-defined relation this is provably unreachable (every conflicting
    /// vertex has at least one output with `{0,1}` flexibility — a vertex
    /// whose image is a singleton forces the candidate through the
    /// projection interval and cannot conflict), so seeing this error means
    /// the relation or the candidate was corrupted mid-search.
    NoSplitPoint {
        /// Cost of the incompatible candidate that could not be split away.
        candidate_cost: u64,
    },
    /// The kernel's resource governor aborted the underlying BDD work
    /// (live-node quota or deadline); see [`brel_bdd::BddError`]. Raised by
    /// fallible entry points such as `Explorer::step_guarded`, which catch
    /// the kernel's cooperative unwind at the step boundary.
    ResourceExhausted(BddError),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::NotWellDefined => {
                write!(
                    f,
                    "relation is not well defined (an input vertex has no image)"
                )
            }
            RelationError::DimensionMismatch { expected, found } => {
                write!(f, "expected a vector of length {expected}, found {found}")
            }
            RelationError::SpaceMismatch => {
                write!(f, "objects belong to different relation spaces")
            }
            RelationError::Parse(msg) => write!(f, "parse error: {msg}"),
            RelationError::Inconsistent => write!(f, "boolean system is inconsistent"),
            RelationError::TooLarge { vars, limit } => {
                write!(
                    f,
                    "operation requires enumerating {vars} variables, limit is {limit}"
                )
            }
            RelationError::NoSplitPoint { candidate_cost } => {
                write!(
                    f,
                    "no valid split point for an incompatible candidate (cost {candidate_cost}); \
                     the relation was corrupted mid-search"
                )
            }
            RelationError::ResourceExhausted(inner) => {
                write!(f, "kernel resource budget exhausted: {inner}")
            }
        }
    }
}

impl From<BddError> for RelationError {
    fn from(error: BddError) -> Self {
        RelationError::ResourceExhausted(error)
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_exhausted_wraps_the_kernel_error() {
        let err = RelationError::from(BddError::QuotaExceeded {
            live_nodes: 10,
            max_live_nodes: 5,
        });
        assert!(matches!(err, RelationError::ResourceExhausted(_)));
        let message = err.to_string();
        assert!(message.contains("resource budget exhausted"));
        assert!(message.contains("quota"));
    }

    #[test]
    fn no_split_point_displays_its_context() {
        let err = RelationError::NoSplitPoint { candidate_cost: 7 };
        let message = err.to_string();
        assert!(message.contains("no valid split point"));
        assert!(message.contains("cost 7"));
        assert_eq!(err, err.clone());
    }
}
