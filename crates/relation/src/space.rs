//! The variable space shared by relations, ISFs and functions.

use std::fmt;
use std::sync::Arc;

use brel_bdd::{Bdd, BddConfig, BddSession, GcStats, Var};

use crate::error::RelationError;

struct SpaceInner {
    mgr: BddSession,
    inputs: Vec<Var>,
    outputs: Vec<Var>,
    input_names: Vec<String>,
    output_names: Vec<String>,
}

/// The space `𝔹ⁿ × 𝔹ᵐ` a Boolean relation lives in: a shared BDD manager
/// with `n` input variables followed by `m` output variables.
///
/// The space is cheaply clonable and — like the [`BddSession`] it wraps —
/// `Send`, so a space (with all its relations dropped or along for the
/// ride) can move between threads. All objects built from the same space
/// share one BDD manager, which is what gives the solver its node sharing
/// across subrelations (Section 7.1 of the paper).
#[derive(Clone)]
pub struct RelationSpace {
    inner: Arc<SpaceInner>,
}

impl fmt::Debug for RelationSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RelationSpace(inputs={}, outputs={})",
            self.num_inputs(),
            self.num_outputs()
        )
    }
}

impl RelationSpace {
    /// Creates a space with `num_inputs` input variables (named `x0..`) and
    /// `num_outputs` output variables (named `y0..`). Inputs are placed
    /// above outputs in the BDD variable order.
    pub fn new(num_inputs: usize, num_outputs: usize) -> Self {
        Self::with_capacity(num_inputs, num_outputs, 1024)
    }

    /// Creates a space whose BDD manager is pre-sized for roughly
    /// `expected_nodes` decision nodes. Batch workers use this when the
    /// relation's size is known before rehydration, so building the
    /// characteristic function triggers no unique-table rehash.
    pub fn with_capacity(num_inputs: usize, num_outputs: usize, expected_nodes: usize) -> Self {
        Self::from_session(
            BddSession::with_capacity(num_inputs + num_outputs, expected_nodes),
            num_inputs,
            num_outputs,
        )
    }

    /// Creates a space with an explicit kernel lifecycle configuration
    /// (see [`BddConfig`]); the former per-manager knob setters are gone.
    pub fn with_config(
        num_inputs: usize,
        num_outputs: usize,
        expected_nodes: usize,
        config: BddConfig,
    ) -> Self {
        Self::from_session(
            BddSession::with_config(num_inputs + num_outputs, expected_nodes, config),
            num_inputs,
            num_outputs,
        )
    }

    /// Wraps an existing session — typically a freshly [`BddSession::reset`]
    /// warm worker session — as a relation space. The session must already
    /// have exactly `num_inputs + num_outputs` variables in identity order;
    /// they are (re)named `x0..`/`y0..`.
    ///
    /// # Panics
    ///
    /// Panics if the session's variable count does not match.
    pub fn from_session(mgr: BddSession, num_inputs: usize, num_outputs: usize) -> Self {
        assert_eq!(
            mgr.num_vars(),
            num_inputs + num_outputs,
            "session variable count does not match the space arity"
        );
        let inputs: Vec<Var> = (0..num_inputs).map(Var::from).collect();
        let outputs: Vec<Var> = (num_inputs..num_inputs + num_outputs)
            .map(Var::from)
            .collect();
        let input_names: Vec<String> = (0..num_inputs).map(|i| format!("x{i}")).collect();
        let output_names: Vec<String> = (0..num_outputs).map(|i| format!("y{i}")).collect();
        for (v, n) in inputs.iter().zip(&input_names) {
            mgr.set_var_name(*v, n.clone());
        }
        for (v, n) in outputs.iter().zip(&output_names) {
            mgr.set_var_name(*v, n.clone());
        }
        RelationSpace {
            inner: Arc::new(SpaceInner {
                mgr,
                inputs,
                outputs,
                input_names,
                output_names,
            }),
        }
    }

    /// Creates a space with named variables.
    pub fn with_names(input_names: &[&str], output_names: &[&str]) -> Self {
        let space = RelationSpace::new(input_names.len(), output_names.len());
        // The session is fresh and unshared here, so names can be set
        // through the manager.
        for (i, name) in input_names.iter().enumerate() {
            space.inner.mgr.set_var_name(space.inner.inputs[i], *name);
        }
        for (i, name) in output_names.iter().enumerate() {
            space.inner.mgr.set_var_name(space.inner.outputs[i], *name);
        }
        let inner = SpaceInner {
            mgr: space.inner.mgr.clone(),
            inputs: space.inner.inputs.clone(),
            outputs: space.inner.outputs.clone(),
            input_names: input_names.iter().map(|s| s.to_string()).collect(),
            output_names: output_names.iter().map(|s| s.to_string()).collect(),
        };
        RelationSpace {
            inner: Arc::new(inner),
        }
    }

    /// Returns `true` if both handles denote the same space.
    pub fn same_space(&self, other: &RelationSpace) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The shared BDD manager.
    pub fn mgr(&self) -> &BddSession {
        &self.inner.mgr
    }

    /// Runs a mark-and-sweep collection on the shared manager, reclaiming
    /// every node not reachable from a live `Bdd` handle; returns the
    /// reclaimed node count. Batch workers call this right after
    /// rehydration so per-worker managers start compact.
    pub fn collect_garbage(&self) -> usize {
        self.inner.mgr.collect_garbage()
    }

    /// The shared manager's lifecycle counters (collections, reclaimed
    /// nodes, peak live nodes, reorder passes, variable-order hash).
    pub fn gc_stats(&self) -> GcStats {
        self.inner.mgr.gc_stats()
    }

    /// Number of input variables.
    pub fn num_inputs(&self) -> usize {
        self.inner.inputs.len()
    }

    /// Number of output variables.
    pub fn num_outputs(&self) -> usize {
        self.inner.outputs.len()
    }

    /// The BDD variables of the inputs, in order.
    pub fn input_vars(&self) -> &[Var] {
        &self.inner.inputs
    }

    /// The BDD variables of the outputs, in order.
    pub fn output_vars(&self) -> &[Var] {
        &self.inner.outputs
    }

    /// The BDD variable of input `i`.
    pub fn input_var(&self, i: usize) -> Var {
        self.inner.inputs[i]
    }

    /// The BDD variable of output `j`.
    pub fn output_var(&self, j: usize) -> Var {
        self.inner.outputs[j]
    }

    /// Name of input `i`.
    pub fn input_name(&self, i: usize) -> &str {
        &self.inner.input_names[i]
    }

    /// Name of output `j`.
    pub fn output_name(&self, j: usize) -> &str {
        &self.inner.output_names[j]
    }

    /// The projection literal of input `i`.
    pub fn input(&self, i: usize) -> Bdd {
        self.inner.mgr.var(self.inner.inputs[i])
    }

    /// The projection literal of output `j`.
    pub fn output(&self, j: usize) -> Bdd {
        self.inner.mgr.var(self.inner.outputs[j])
    }

    /// Builds the minterm BDD of an input vertex.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DimensionMismatch`] if `bits` has the wrong
    /// length.
    pub fn input_minterm(&self, bits: &[bool]) -> Result<Bdd, RelationError> {
        if bits.len() != self.num_inputs() {
            return Err(RelationError::DimensionMismatch {
                expected: self.num_inputs(),
                found: bits.len(),
            });
        }
        let lits: Vec<(Var, bool)> = self
            .inner
            .inputs
            .iter()
            .zip(bits.iter())
            .map(|(&v, &b)| (v, b))
            .collect();
        Ok(self.inner.mgr.cube(&lits))
    }

    /// Builds the minterm BDD of an output vertex.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::DimensionMismatch`] if `bits` has the wrong
    /// length.
    pub fn output_minterm(&self, bits: &[bool]) -> Result<Bdd, RelationError> {
        if bits.len() != self.num_outputs() {
            return Err(RelationError::DimensionMismatch {
                expected: self.num_outputs(),
                found: bits.len(),
            });
        }
        let lits: Vec<(Var, bool)> = self
            .inner
            .outputs
            .iter()
            .zip(bits.iter())
            .map(|(&v, &b)| (v, b))
            .collect();
        Ok(self.inner.mgr.cube(&lits))
    }

    /// Builds a full assignment (indexed by BDD variable) from input and
    /// output vertex bits, suitable for evaluating characteristic functions.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `output` are longer than the corresponding
    /// variable lists.
    pub fn full_assignment(&self, input: &[bool], output: &[bool]) -> Vec<bool> {
        let mut asg = vec![false; self.inner.mgr.num_vars()];
        for (v, &b) in self.inner.inputs.iter().zip(input) {
            asg[v.index()] = b;
        }
        for (v, &b) in self.inner.outputs.iter().zip(output) {
            asg[v.index()] = b;
        }
        asg
    }

    /// Iterates over all input vertices (as bit vectors), LSB-first in input
    /// index order.
    ///
    /// # Panics
    ///
    /// Panics if the space has more than 24 inputs (exhaustive enumeration
    /// would be unreasonable).
    pub fn enumerate_inputs(&self) -> Vec<Vec<bool>> {
        let n = self.num_inputs();
        assert!(n <= 24, "too many inputs for exhaustive enumeration");
        (0..(1u64 << n))
            .map(|bits| (0..n).map(|i| bits & (1 << i) != 0).collect())
            .collect()
    }

    /// Iterates over all output vertices (as bit vectors).
    ///
    /// # Panics
    ///
    /// Panics if the space has more than 24 outputs.
    pub fn enumerate_outputs(&self) -> Vec<Vec<bool>> {
        let m = self.num_outputs();
        assert!(m <= 24, "too many outputs for exhaustive enumeration");
        (0..(1u64 << m))
            .map(|bits| (0..m).map(|i| bits & (1 << i) != 0).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variables_are_ordered_inputs_then_outputs() {
        let s = RelationSpace::new(3, 2);
        assert_eq!(s.num_inputs(), 3);
        assert_eq!(s.num_outputs(), 2);
        assert_eq!(s.input_var(0), Var(0));
        assert_eq!(s.output_var(0), Var(3));
        assert_eq!(s.output_var(1), Var(4));
        assert_eq!(s.mgr().num_vars(), 5);
    }

    #[test]
    fn named_spaces() {
        let s = RelationSpace::with_names(&["a", "b"], &["x"]);
        assert_eq!(s.input_name(0), "a");
        assert_eq!(s.output_name(0), "x");
        assert_eq!(s.mgr().var_name(s.input_var(1)), "b");
    }

    #[test]
    fn minterm_builders_validate_length() {
        let s = RelationSpace::new(2, 1);
        assert!(s.input_minterm(&[true]).is_err());
        let m = s.input_minterm(&[true, false]).unwrap();
        assert_eq!(m.sat_count(3), 2, "output variable remains free");
        let o = s.output_minterm(&[true]).unwrap();
        assert_eq!(o.support(), vec![Var(2)]);
    }

    #[test]
    fn enumeration_sizes() {
        let s = RelationSpace::new(3, 2);
        assert_eq!(s.enumerate_inputs().len(), 8);
        assert_eq!(s.enumerate_outputs().len(), 4);
        assert_eq!(s.enumerate_inputs()[1], vec![true, false, false]);
    }

    #[test]
    fn clone_shares_space() {
        let s = RelationSpace::new(1, 1);
        let t = s.clone();
        assert!(s.same_space(&t));
        let u = RelationSpace::new(1, 1);
        assert!(!s.same_space(&u));
    }
}
