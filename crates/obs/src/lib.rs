//! Workspace-wide observability for the BREL suite: spans, events,
//! counters, Chrome-trace export, and phase attribution.
//!
//! # Design
//!
//! Instrumentation sites call [`span`] (RAII guard), [`event`] (instant
//! marker), or [`count`] (named counter). All three are gated on a global
//! category bitmask held in a single `AtomicU32`: when the category is
//! disabled the call is one relaxed atomic load and an immediate return —
//! no clock read, no allocation, no lock. The monotonic clock is only
//! consulted inside the enabled path, so a process that never installs a
//! collector pays (almost) nothing for being instrumented.
//!
//! Data flows into a pluggable [`Collector`]:
//!
//! * [`NullCollector`] — the default; mask `0`, records nothing.
//! * [`CountingCollector`] — per-phase call counts and total durations
//!   only; cheap enough for always-on aggregate accounting.
//! * [`RecordingCollector`] — full span/event capture for export as a
//!   Chrome trace-event JSON file ([`RecordingCollector::chrome_trace`],
//!   loadable in Perfetto or `chrome://tracing`) and for the aggregate
//!   [`PhaseReport`] (per-phase total/self time and call counts).
//!
//! Spans land on *tracks* — one per worker thread by default, or named
//! explicitly via [`set_track`] so short-lived scoped threads (wide-mode
//! round workers) map onto one stable track per worker index.
//!
//! # Determinism contract
//!
//! Observability is strictly write-only with respect to the suite's
//! deterministic outputs. Timing and collector state never flow into any
//! deterministic serialization: batch JSON/CSV reports remain
//! byte-identical whether tracing is off, on, or recording, and across
//! worker counts. Traces and phase reports are emitted only through
//! side channels (a `--trace-out` file, stderr). The only timing values
//! in user-facing reports are the pre-existing `wall_micros` fields,
//! which stay behind the engine's explicit `include_timing` gates.
//!
//! The [`MetricsRegistry`] is the unified read side for the suite's
//! per-crate counter structs (`CacheStats`, `GcStats`, `ReuseStats`,
//! `SolveStats`): each struct exposes its fields as `(name, value)`
//! pairs that a registry absorbs under a dotted prefix, giving one flat,
//! sorted namespace over every layer's counters.

#![warn(missing_docs)]

mod chrome;
mod collector;
mod metrics;
mod report;

pub use chrome::chrome_trace;
pub use collector::{
    ArgList, Collector, CountingCollector, EventRecord, NullCollector, PhaseAgg,
    RecordingCollector, SpanRecord,
};
pub use metrics::{Metric, MetricsRegistry};
pub use report::{PhaseReport, PhaseRow};

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::Instant;

/// Instrumentation categories; each maps to one bit of the global mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Category {
    /// BDD kernel lifecycle phases: GC sweep, compaction, sifting.
    Kernel = 0,
    /// Per-operation kernel work: `ite`, quantification, ISOP. High
    /// frequency — collectors may aggregate these instead of keeping
    /// individual span records.
    KernelOp = 1,
    /// Search-layer work: `Explorer` expansions, frontier traffic.
    Search = 2,
    /// Engine-layer work: jobs, wide-mode rounds, dispatch/merge.
    Engine = 3,
    /// Session reuse: warm rehydration hits/misses, reset cost.
    Session = 4,
    /// Serve-layer work: connection accept, admission, queue wait,
    /// incumbent streaming, load shedding.
    Serve = 5,
}

impl Category {
    /// Every category enabled.
    pub const ALL: u32 = 0b11_1111;

    /// The mask bit for this category.
    #[inline]
    pub const fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// Short lowercase label, used as the Chrome trace `cat` field.
    pub const fn label(self) -> &'static str {
        match self {
            Category::Kernel => "kernel",
            Category::KernelOp => "kernel-op",
            Category::Search => "search",
            Category::Engine => "engine",
            Category::Session => "session",
            Category::Serve => "serve",
        }
    }
}

/// Global category mask; `0` means every instrumentation site is inert.
static MASK: AtomicU32 = AtomicU32::new(0);

/// The installed collector. Read-locked once per *enabled* span/event;
/// never touched on the disabled fast path.
static COLLECTOR: RwLock<Option<Arc<dyn Collector>>> = RwLock::new(None);

/// Shared epoch for all span timestamps, fixed at first use.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds elapsed since `start`, saturating at `u64::MAX`.
///
/// The one shared wall-clock helper for the workspace (deduplicates the
/// former per-crate `u64::try_from(d.as_micros()).unwrap_or(u64::MAX)`
/// copies).
#[inline]
pub fn wall_micros(start: Instant) -> u64 {
    duration_micros(start.elapsed())
}

/// Microseconds in `d`, saturating at `u64::MAX`.
#[inline]
pub fn duration_micros(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[inline]
fn now_micros() -> u64 {
    wall_micros(*EPOCH.get_or_init(Instant::now))
}

/// Installs `collector` as the global sink and arms its category mask.
///
/// Spans already open keep reporting to the collector they captured at
/// open time, so swapping collectors mid-span is safe (if noisy).
pub fn install(collector: Arc<dyn Collector>) {
    let mask = collector.mask();
    *COLLECTOR.write().unwrap_or_else(PoisonError::into_inner) = Some(collector);
    MASK.store(mask, Ordering::Release);
}

/// Removes the global collector; every instrumentation site goes inert.
pub fn uninstall() {
    MASK.store(0, Ordering::Release);
    *COLLECTOR.write().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Whether `cat` is currently enabled. One relaxed load.
#[inline]
pub fn enabled(cat: Category) -> bool {
    MASK.load(Ordering::Relaxed) & cat.bit() != 0
}

fn current_collector() -> Option<Arc<dyn Collector>> {
    COLLECTOR
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

// ---------------------------------------------------------------------------
// Tracks
// ---------------------------------------------------------------------------

/// Interned track names, indexed by track id. Track `0` is reserved for
/// the process default ("main").
static TRACKS: Mutex<Vec<String>> = Mutex::new(Vec::new());

thread_local! {
    /// The track spans opened on this thread land on; lazily defaulted
    /// from the thread name.
    static CURRENT_TRACK: Cell<Option<u32>> = const { Cell::new(None) };
    /// Open-span nesting depth on this thread (enabled spans only).
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Interns `name` and returns its stable track id. Repeated calls with
/// the same name return the same id, so scoped threads respawned each
/// round can share one logical track.
pub fn intern_track(name: &str) -> u32 {
    let mut tracks = TRACKS.lock().unwrap_or_else(PoisonError::into_inner);
    if tracks.is_empty() {
        tracks.push("main".to_string());
    }
    if let Some(id) = tracks.iter().position(|t| t == name) {
        return id as u32;
    }
    tracks.push(name.to_string());
    (tracks.len() - 1) as u32
}

/// A snapshot of every interned track name, indexed by track id.
pub fn track_names() -> Vec<String> {
    let mut tracks = TRACKS.lock().unwrap_or_else(PoisonError::into_inner);
    if tracks.is_empty() {
        tracks.push("main".to_string());
    }
    tracks.clone()
}

/// Assigns the calling thread to the named track until the returned
/// guard drops (which restores the previous assignment).
pub fn set_track(name: &str) -> TrackGuard {
    let id = intern_track(name);
    let previous = CURRENT_TRACK.with(|t| t.replace(Some(id)));
    TrackGuard { previous }
}

/// Restores the thread's previous track assignment on drop. See
/// [`set_track`].
#[must_use = "dropping the guard immediately restores the previous track"]
pub struct TrackGuard {
    previous: Option<u32>,
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        CURRENT_TRACK.with(|t| t.set(self.previous));
    }
}

fn current_track() -> u32 {
    CURRENT_TRACK.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| "main".to_string());
            let id = intern_track(&name);
            t.set(Some(id));
            id
        }
    })
}

/// Current open-span nesting depth on this thread. Exposed so tests can
/// assert RAII guards rebalance the stack across panics.
pub fn current_depth() -> u32 {
    DEPTH.with(Cell::get)
}

// ---------------------------------------------------------------------------
// Spans, events, counters
// ---------------------------------------------------------------------------

/// Opens a span; the span closes (and is reported) when the returned
/// guard drops, including during panic unwinding. Disabled categories
/// return an inert guard without reading the clock.
#[inline]
pub fn span(cat: Category, name: &'static str) -> SpanGuard {
    if !enabled(cat) {
        return SpanGuard { active: None };
    }
    SpanGuard::open(cat, name)
}

/// RAII span guard returned by [`span`]; reports the completed span to
/// the collector on drop.
#[must_use = "dropping the guard ends the span immediately"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    collector: Arc<dyn Collector>,
    cat: Category,
    name: &'static str,
    track: u32,
    depth: u32,
    start_us: u64,
    args: ArgList,
}

impl SpanGuard {
    #[inline(never)]
    fn open(cat: Category, name: &'static str) -> SpanGuard {
        let Some(collector) = current_collector() else {
            return SpanGuard { active: None };
        };
        let track = current_track();
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        SpanGuard {
            active: Some(ActiveSpan {
                collector,
                cat,
                name,
                track,
                depth,
                start_us: now_micros(),
                args: ArgList::new(),
            }),
        }
    }

    /// Attaches a small integer argument (shown in the trace viewer).
    /// No-op on an inert guard; at most [`ArgList::CAPACITY`] args stick.
    #[inline]
    pub fn arg(&mut self, key: &'static str, value: u64) -> &mut Self {
        if let Some(active) = &mut self.active {
            active.args.push(key, value);
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let end_us = now_micros();
            DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            active.collector.span(SpanRecord {
                cat: active.cat,
                name: active.name,
                track: active.track,
                start_us: active.start_us,
                dur_us: end_us.saturating_sub(active.start_us),
                depth: active.depth,
                args: active.args,
            });
        }
    }
}

/// Emits an instant event (a zero-duration marker on the thread's
/// track). Inert when `cat` is disabled.
#[inline]
pub fn event(cat: Category, name: &'static str) {
    if enabled(cat) {
        emit_event(cat, name, ArgList::new());
    }
}

/// [`event`] with one integer argument.
#[inline]
pub fn event_with(cat: Category, name: &'static str, key: &'static str, value: u64) {
    if enabled(cat) {
        let mut args = ArgList::new();
        args.push(key, value);
        emit_event(cat, name, args);
    }
}

#[inline(never)]
fn emit_event(cat: Category, name: &'static str, args: ArgList) {
    if let Some(collector) = current_collector() {
        collector.event(EventRecord {
            cat,
            name,
            track: current_track(),
            ts_us: now_micros(),
            args,
        });
    }
}

/// Adds `delta` to the named collector counter. Inert when `cat` is
/// disabled.
#[inline]
pub fn count(cat: Category, name: &'static str, delta: u64) {
    if enabled(cat) {
        if let Some(collector) = current_collector() {
            collector.add(name, delta);
        }
    }
}

/// Measures the per-call cost, in nanoseconds, of opening a span whose
/// category the current mask rejects — the price instrumented code pays
/// when tracing is off. Callers probing the zero-overhead contract (the
/// CI gate, the bench harness) should [`uninstall`] first so the mask is
/// `0`; with a collector armed this records two million spans instead.
pub fn disabled_span_ns() -> u64 {
    const PROBES: u32 = 2_000_000;
    let start = Instant::now();
    for _ in 0..PROBES {
        let _guard = span(Category::Engine, "overhead_probe");
    }
    let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    nanos / u64::from(PROBES)
}

/// Opens a span with optional `key => value` arguments:
/// `let _g = obs::span!(Category::Engine, "round", "round" => i);`
#[macro_export]
macro_rules! span {
    ($cat:expr, $name:expr) => {
        $crate::span($cat, $name)
    };
    ($cat:expr, $name:expr, $($key:literal => $value:expr),+ $(,)?) => {{
        let mut guard = $crate::span($cat, $name);
        $(guard.arg($key, $value as u64);)+
        guard
    }};
}
