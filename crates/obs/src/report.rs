//! The compact aggregate phase report: per-phase total/self time and
//! call counts, plus counters, rendered as aligned text.
//!
//! Spans from concurrent tracks (e.g. the engine's `wide-worker-*`
//! threads) are *never* merged into one nesting tree: each track gets its
//! own parent reconstruction, and the workspace-wide rows simply sum the
//! per-track phase totals. That makes cross-track sums legible — a phase
//! whose `total` exceeds the report wall ran concurrently on several
//! tracks, and the per-track rollup shows exactly where.

use crate::collector::{PhaseAgg, SpanRecord};
use crate::Category;

/// One phase (a `(category, name)` pair) in the aggregate report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// The phase's category.
    pub category: Category,
    /// The phase name.
    pub name: String,
    /// Completed span count.
    pub count: u64,
    /// Total wall time across all spans, microseconds.
    pub total_us: u64,
    /// Self time: total minus the portion covered by directly nested
    /// recorded spans on the same track, microseconds. A child that
    /// outlives its parent (clock jitter around guard drops) is clamped
    /// to the overlap, so a parent's self time never underflows and the
    /// per-track self times sum to at most the enclosing span. Phases
    /// kept only as aggregates (kernel ops by default) report
    /// `self_us == total_us`.
    pub self_us: u64,
}

/// The per-track slice of the report: one row set computed from the raw
/// spans recorded on a single track, with the same total/self semantics
/// as the workspace-wide rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackReport {
    /// The track's display name (see [`crate::track_names`]); tracks
    /// never named fall back to `track{id}`.
    pub track: String,
    /// Phase rows of this track, sorted by total time, largest first.
    pub rows: Vec<PhaseRow>,
}

impl TrackReport {
    /// Total time of the named phase on this track, microseconds
    /// (0 when absent).
    pub fn total_us(&self, name: &str) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.total_us)
            .sum()
    }
}

/// Aggregate per-phase accounting built from a recording.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseReport {
    /// Rows sorted by total time, largest first.
    pub rows: Vec<PhaseRow>,
    /// Per-track rollups in track-id order, raw recorded spans only
    /// (aggregate-only phases have no span records and appear solely in
    /// [`PhaseReport::rows`]).
    pub tracks: Vec<TrackReport>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Observed wall span of the recording (max end − min start over
    /// all recorded spans), microseconds.
    pub wall_us: u64,
}

impl PhaseReport {
    /// Builds the report from recorded spans plus the (possibly larger)
    /// aggregate set — phases folded to aggregates have no span records
    /// but still get a row.
    pub(crate) fn build(
        spans: &[SpanRecord],
        phases: &[(Category, &'static str, PhaseAgg)],
        counters: Vec<(String, u64)>,
        track_names: &[String],
    ) -> PhaseReport {
        // Reconstruct nesting per track to charge each span's duration
        // to its parent exactly once; self = total − children. The
        // charge is clamped to the parent/child overlap so a child that
        // straddles its parent's end never drains a sibling's (or the
        // parent's) self time.
        let mut child_us: Vec<u64> = vec![0; spans.len()];
        let mut order: Vec<usize> = (0..spans.len()).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&spans[a], &spans[b]);
            sa.track
                .cmp(&sb.track)
                .then(sa.start_us.cmp(&sb.start_us))
                .then(sb.dur_us.cmp(&sa.dur_us))
                .then(sa.depth.cmp(&sb.depth))
        });
        let mut stack: Vec<usize> = Vec::new();
        let mut current_track = None;
        for &i in &order {
            let span = &spans[i];
            if current_track != Some(span.track) {
                stack.clear();
                current_track = Some(span.track);
            }
            while let Some(&top) = stack.last() {
                if spans[top].end_us() <= span.start_us {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&parent) = stack.last() {
                // Sorted by start within the track, so the overlap is
                // [span.start, min(ends)).
                let overlap = span
                    .end_us()
                    .min(spans[parent].end_us())
                    .saturating_sub(span.start_us);
                child_us[parent] = child_us[parent].saturating_add(overlap);
            }
            stack.push(i);
        }

        let mut nested: std::collections::BTreeMap<(Category, &'static str), u64> =
            std::collections::BTreeMap::new();
        for (i, span) in spans.iter().enumerate() {
            *nested.entry((span.cat, span.name)).or_default() += child_us[i];
        }

        let mut rows: Vec<PhaseRow> = phases
            .iter()
            .map(|&(category, name, agg)| {
                let children = nested.get(&(category, name)).copied().unwrap_or(0);
                PhaseRow {
                    category,
                    name: name.to_string(),
                    count: agg.count,
                    total_us: agg.total_us,
                    self_us: agg.total_us.saturating_sub(children),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.total_us
                .cmp(&a.total_us)
                .then_with(|| a.name.cmp(&b.name))
        });

        // The per-track rollup: the same total/self accounting, but from
        // one track's raw spans only. This is where cross-track sums
        // become legible — concurrent workers each get their own rows.
        type PhaseAgg = std::collections::BTreeMap<(Category, &'static str), (u64, u64, u64)>;
        let mut per_track: std::collections::BTreeMap<u32, PhaseAgg> =
            std::collections::BTreeMap::new();
        for (i, span) in spans.iter().enumerate() {
            let slot = per_track
                .entry(span.track)
                .or_default()
                .entry((span.cat, span.name))
                .or_default();
            slot.0 += 1;
            slot.1 += span.dur_us;
            slot.2 += child_us[i];
        }
        let tracks = per_track
            .into_iter()
            .map(|(id, phases)| {
                let mut rows: Vec<PhaseRow> = phases
                    .into_iter()
                    .map(|((category, name), (count, total_us, children))| PhaseRow {
                        category,
                        name: name.to_string(),
                        count,
                        total_us,
                        self_us: total_us.saturating_sub(children),
                    })
                    .collect();
                rows.sort_by(|a, b| {
                    b.total_us
                        .cmp(&a.total_us)
                        .then_with(|| a.name.cmp(&b.name))
                });
                TrackReport {
                    track: track_names
                        .get(id as usize)
                        .cloned()
                        .unwrap_or_else(|| format!("track{id}")),
                    rows,
                }
            })
            .collect();

        let wall_us = match (
            spans.iter().map(|s| s.start_us).min(),
            spans.iter().map(|s| s.end_us()).max(),
        ) {
            (Some(lo), Some(hi)) => hi.saturating_sub(lo),
            _ => 0,
        };

        PhaseReport {
            rows,
            tracks,
            counters,
            wall_us,
        }
    }

    /// Total time of the named phase, microseconds (0 when absent).
    pub fn total_us(&self, name: &str) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.total_us)
            .sum()
    }

    /// The first track whose rollup contains the named phase — e.g.
    /// `track_with("wide_solve")` finds the coordinator track so callers
    /// can compute attribution ratios against spans that actually nest
    /// under each other, instead of mixing in concurrent worker time.
    pub fn track_with(&self, name: &str) -> Option<&TrackReport> {
        self.tracks
            .iter()
            .find(|t| t.rows.iter().any(|r| r.name == name))
    }

    /// Renders the report as aligned text (the `--obs-report` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "phase report · wall {:.3} ms\n",
            self.wall_us as f64 / 1e3
        ));
        out.push_str(&format!(
            "  {:<10} {:<14} {:>10} {:>12} {:>12} {:>6}\n",
            "category", "phase", "count", "total ms", "self ms", "wall%"
        ));
        for row in &self.rows {
            let pct = if self.wall_us == 0 {
                0.0
            } else {
                100.0 * row.total_us as f64 / self.wall_us as f64
            };
            out.push_str(&format!(
                "  {:<10} {:<14} {:>10} {:>12.3} {:>12.3} {:>5.1}%\n",
                row.category.label(),
                row.name,
                row.count,
                row.total_us as f64 / 1e3,
                row.self_us as f64 / 1e3,
                pct
            ));
        }
        if self.tracks.len() > 1 {
            out.push_str("  per-track self time:\n");
            for track in &self.tracks {
                let detail = track
                    .rows
                    .iter()
                    .filter(|row| row.self_us > 0)
                    .take(6)
                    .map(|row| format!("{} {:.3}", row.name, row.self_us as f64 / 1e3))
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!("    {:<16} {detail}\n", track.track));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("    {name:<40} {value}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::ArgList;

    fn span(name: &'static str, track: u32, start_us: u64, dur_us: u64) -> SpanRecord {
        SpanRecord {
            cat: Category::Engine,
            name,
            track,
            start_us,
            dur_us,
            depth: 0,
            args: ArgList::new(),
        }
    }

    fn agg_of(spans: &[SpanRecord]) -> Vec<(Category, &'static str, PhaseAgg)> {
        let mut phases: std::collections::BTreeMap<(Category, &'static str), PhaseAgg> =
            Default::default();
        for s in spans {
            let agg = phases.entry((s.cat, s.name)).or_default();
            agg.count += 1;
            agg.total_us += s.dur_us;
        }
        phases
            .into_iter()
            .map(|((cat, name), agg)| (cat, name, agg))
            .collect()
    }

    fn build(spans: &[SpanRecord], names: &[&str]) -> PhaseReport {
        let names: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        PhaseReport::build(spans, &agg_of(spans), Vec::new(), &names)
    }

    /// The double-counting regression: on every track, the self times of
    /// the phases recorded there must sum to no more than the track's
    /// enclosing span — even when a child span partially overlaps its
    /// parent's end (clock jitter around guard drops), and even when a
    /// concurrent track records the same phase names.
    #[test]
    fn per_track_self_times_sum_to_at_most_the_enclosing_span() {
        let spans = vec![
            // Track 0: solve [0,100) with two proper children.
            span("solve", 0, 0, 100),
            span("expand", 0, 10, 30),
            span("rehydrate", 0, 50, 20),
            // Track 1: drive [0,80), one proper child and one child that
            // straddles the drive's end — only the overlap may be charged.
            span("drive", 1, 0, 80),
            span("expand", 1, 5, 25),
            span("rehydrate", 1, 70, 25), // ends at 95, past drive's 80
        ];
        let report = build(&spans, &["main", "wide-worker-1"]);

        assert_eq!(report.tracks.len(), 2);
        // Self times are a partition of each track's observed wall: they
        // sum to no more than it (exactly it here, since every instant
        // is covered by some span). Unclamped charging would break this
        // by billing the straddling child's out-of-parent tail twice.
        for (track, wall) in report.tracks.iter().zip([100u64, 95]) {
            let self_sum: u64 = track.rows.iter().map(|row| row.self_us).sum();
            assert!(
                self_sum <= wall,
                "track {}: self times sum to {self_sum} us inside a {wall} us wall",
                track.track
            );
            assert_eq!(self_sum, wall, "track {} left gaps", track.track);
        }

        // The straddling child is clamped to its 10 us overlap: drive
        // keeps 80 − 25 − 10 = 45 us of self time, not 80 − 25 − 25.
        let worker = report.track_with("drive").expect("worker track");
        assert_eq!(worker.track, "wide-worker-1");
        let drive = worker.rows.iter().find(|r| r.name == "drive").unwrap();
        assert_eq!(drive.self_us, 45);

        // Workspace-wide rows still sum both tracks' raw time — the
        // concurrency is visible, not hidden.
        assert_eq!(report.total_us("expand"), 55);
        assert_eq!(report.total_us("rehydrate"), 45);
    }

    /// Concurrent tracks never nest under each other: a worker span that
    /// sits inside the coordinator's wall-clock window must not be
    /// charged to the coordinator's span.
    #[test]
    fn tracks_are_attributed_independently() {
        let spans = vec![span("wide_solve", 0, 0, 100), span("drive", 1, 20, 60)];
        let report = build(&spans, &["main"]);
        let solve = report.rows.iter().find(|r| r.name == "wide_solve").unwrap();
        assert_eq!(solve.self_us, 100, "cross-track span charged as a child");
        assert_eq!(report.track_with("drive").unwrap().track, "track1");
        assert!(report.render().contains("per-track self time:"));
    }
}
