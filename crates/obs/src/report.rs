//! The compact aggregate phase report: per-phase total/self time and
//! call counts, plus counters, rendered as aligned text.

use crate::collector::{PhaseAgg, SpanRecord};
use crate::Category;

/// One phase (a `(category, name)` pair) in the aggregate report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// The phase's category.
    pub category: Category,
    /// The phase name.
    pub name: String,
    /// Completed span count.
    pub count: u64,
    /// Total wall time across all spans, microseconds.
    pub total_us: u64,
    /// Self time: total minus time spent in directly nested recorded
    /// spans, microseconds. Phases kept only as aggregates (kernel ops
    /// by default) report `self_us == total_us`.
    pub self_us: u64,
}

/// Aggregate per-phase accounting built from a recording.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseReport {
    /// Rows sorted by total time, largest first.
    pub rows: Vec<PhaseRow>,
    /// Named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Observed wall span of the recording (max end − min start over
    /// all recorded spans), microseconds.
    pub wall_us: u64,
}

impl PhaseReport {
    /// Builds the report from recorded spans plus the (possibly larger)
    /// aggregate set — phases folded to aggregates have no span records
    /// but still get a row.
    pub(crate) fn build(
        spans: &[SpanRecord],
        phases: &[(Category, &'static str, PhaseAgg)],
        counters: Vec<(String, u64)>,
    ) -> PhaseReport {
        // Reconstruct nesting per track to charge each span's duration
        // to its parent exactly once; self = total − children.
        let mut child_us: Vec<u64> = vec![0; spans.len()];
        let mut order: Vec<usize> = (0..spans.len()).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&spans[a], &spans[b]);
            sa.track
                .cmp(&sb.track)
                .then(sa.start_us.cmp(&sb.start_us))
                .then(sb.dur_us.cmp(&sa.dur_us))
                .then(sa.depth.cmp(&sb.depth))
        });
        let mut stack: Vec<usize> = Vec::new();
        let mut current_track = None;
        for &i in &order {
            let span = &spans[i];
            if current_track != Some(span.track) {
                stack.clear();
                current_track = Some(span.track);
            }
            while let Some(&top) = stack.last() {
                if spans[top].end_us() <= span.start_us {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&parent) = stack.last() {
                child_us[parent] = child_us[parent].saturating_add(span.dur_us);
            }
            stack.push(i);
        }

        let mut nested: std::collections::BTreeMap<(Category, &'static str), u64> =
            std::collections::BTreeMap::new();
        for (i, span) in spans.iter().enumerate() {
            *nested.entry((span.cat, span.name)).or_default() += child_us[i];
        }

        let mut rows: Vec<PhaseRow> = phases
            .iter()
            .map(|&(category, name, agg)| {
                let children = nested.get(&(category, name)).copied().unwrap_or(0);
                PhaseRow {
                    category,
                    name: name.to_string(),
                    count: agg.count,
                    total_us: agg.total_us,
                    self_us: agg.total_us.saturating_sub(children),
                }
            })
            .collect();
        rows.sort_by(|a, b| {
            b.total_us
                .cmp(&a.total_us)
                .then_with(|| a.name.cmp(&b.name))
        });

        let wall_us = match (
            spans.iter().map(|s| s.start_us).min(),
            spans.iter().map(|s| s.end_us()).max(),
        ) {
            (Some(lo), Some(hi)) => hi.saturating_sub(lo),
            _ => 0,
        };

        PhaseReport {
            rows,
            counters,
            wall_us,
        }
    }

    /// Total time of the named phase, microseconds (0 when absent).
    pub fn total_us(&self, name: &str) -> u64 {
        self.rows
            .iter()
            .filter(|r| r.name == name)
            .map(|r| r.total_us)
            .sum()
    }

    /// Renders the report as aligned text (the `--obs-report` output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "phase report · wall {:.3} ms\n",
            self.wall_us as f64 / 1e3
        ));
        out.push_str(&format!(
            "  {:<10} {:<14} {:>10} {:>12} {:>12} {:>6}\n",
            "category", "phase", "count", "total ms", "self ms", "wall%"
        ));
        for row in &self.rows {
            let pct = if self.wall_us == 0 {
                0.0
            } else {
                100.0 * row.total_us as f64 / self.wall_us as f64
            };
            out.push_str(&format!(
                "  {:<10} {:<14} {:>10} {:>12.3} {:>12.3} {:>5.1}%\n",
                row.category.label(),
                row.name,
                row.count,
                row.total_us as f64 / 1e3,
                row.self_us as f64 / 1e3,
                pct
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for (name, value) in &self.counters {
                out.push_str(&format!("    {name:<40} {value}\n"));
            }
        }
        out
    }
}
