//! Chrome trace-event JSON export.
//!
//! Emits the `{"traceEvents": [...]}` object format understood by
//! Perfetto and `chrome://tracing`: one `"M"` (metadata) event naming
//! each track, then the spans as `"X"` (complete) events and the instant
//! events as `"i"` events. Events are grouped per track and sorted by
//! `(ts asc, dur desc)`, so per-track timestamps are non-decreasing and
//! parents precede their children.

use crate::collector::{ArgList, EventRecord, SpanRecord};

/// The fixed `pid` every track is filed under.
const PID: u32 = 1;

/// Renders `spans` and `events` as Chrome trace-event JSON.
/// `track_names` maps track ids (indices) to display names; unknown ids
/// fall back to `track-<id>`.
pub fn chrome_trace(
    spans: &[SpanRecord],
    events: &[EventRecord],
    track_names: &[String],
) -> String {
    let mut used: Vec<u32> = spans
        .iter()
        .map(|s| s.track)
        .chain(events.iter().map(|e| e.track))
        .collect();
    used.sort_unstable();
    used.dedup();

    let mut out = String::with_capacity(64 + spans.len() * 96 + events.len() * 80);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for &track in &used {
        let fallback;
        let name = match track_names.get(track as usize) {
            Some(n) => n.as_str(),
            None => {
                fallback = format!("track-{track}");
                fallback.as_str()
            }
        };
        push_sep(&mut out, &mut first);
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"",
            tid(track)
        ));
        escape_into(&mut out, name);
        out.push_str("\"}}");
    }

    for &track in &used {
        // Per-track, (ts asc, dur desc): non-decreasing timestamps, and
        // a parent span sorts before the children it encloses.
        let mut track_spans: Vec<&SpanRecord> = spans.iter().filter(|s| s.track == track).collect();
        track_spans.sort_by(|a, b| {
            a.start_us
                .cmp(&b.start_us)
                .then(b.dur_us.cmp(&a.dur_us))
                .then(a.depth.cmp(&b.depth))
        });
        for span in track_spans {
            push_sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"{}\",\"name\":\"",
                tid(track),
                span.start_us,
                span.dur_us,
                span.cat.label()
            ));
            escape_into(&mut out, span.name);
            out.push('"');
            push_args(&mut out, &span.args);
            out.push('}');
        }

        let mut track_events: Vec<&EventRecord> =
            events.iter().filter(|e| e.track == track).collect();
        track_events.sort_by_key(|e| e.ts_us);
        for event in track_events {
            push_sep(&mut out, &mut first);
            out.push_str(&format!(
                "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"cat\":\"{}\",\"name\":\"",
                tid(track),
                event.ts_us,
                event.cat.label()
            ));
            escape_into(&mut out, event.name);
            out.push('"');
            push_args(&mut out, &event.args);
            out.push('}');
        }
    }
    out.push_str("]}");
    out
}

/// Chrome `tid`s are 1-based so track 0 ("main") does not collide with
/// the conventional idle tid 0.
fn tid(track: u32) -> u32 {
    track + 1
}

fn push_sep(out: &mut String, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
}

fn push_args(out: &mut String, args: &ArgList) {
    if args.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    let mut first = true;
    for (key, value) in args.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        escape_into(out, key);
        out.push_str(&format!("\":{value}"));
    }
    out.push('}');
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}
