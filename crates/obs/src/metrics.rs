//! The unified metrics registry: one flat, sorted namespace of named
//! `u64` counters/gauges over every layer's statistics.
//!
//! The suite's per-crate stats structs (`CacheStats`, `GcStats`,
//! `ReuseStats`, `SolveStats`) each expose their fields as
//! `(name, value)` pairs; [`MetricsRegistry::absorb`] files them under a
//! dotted prefix (e.g. `kernel.cache.cache_hits`), making the structs
//! typed views over one registry rather than four unrelated silos.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A handle to one named metric; cheap to clone, updates are atomic.
#[derive(Debug, Clone, Default)]
pub struct Metric(Arc<AtomicU64>);

impl Metric {
    /// Adds `delta` (counter-style).
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrites the value (gauge-style).
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the value to `value` if larger (high-watermark gauge).
    pub fn set_max(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A registry of named metrics. Handle lookup takes a lock; updates
/// through a held [`Metric`] handle are lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the handle for `name`, registering it at zero first if
    /// needed.
    pub fn metric(&self, name: &str) -> Metric {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(metric) = metrics.get(name) {
            return metric.clone();
        }
        let metric = Metric::default();
        metrics.insert(name.to_string(), metric.clone());
        metric
    }

    /// Sets `prefix.name` for every `(name, value)` pair — the bridge
    /// from a stats-struct snapshot into the registry namespace.
    pub fn absorb(&self, prefix: &str, pairs: &[(&str, u64)]) {
        for &(name, value) in pairs {
            self.metric(&format!("{prefix}.{name}")).set(value);
        }
    }

    /// Adds (rather than sets) every pair under `prefix`, for
    /// accumulating deltas across jobs or rounds.
    pub fn absorb_delta(&self, prefix: &str, pairs: &[(&str, u64)]) {
        for &(name, value) in pairs {
            self.metric(&format!("{prefix}.{name}")).add(value);
        }
    }

    /// Snapshot of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        metrics
            .iter()
            .map(|(name, metric)| (name.clone(), metric.get()))
            .collect()
    }

    /// Renders the snapshot as aligned `name value` lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            out.push_str(&format!("  {name:<44} {value}\n"));
        }
        out
    }
}
