//! The [`Collector`] trait and its three implementations: null,
//! counting, and recording.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

use crate::report::PhaseReport;
use crate::Category;

/// A fixed-capacity list of `(key, value)` span/event arguments. Kept
/// inline (no allocation) so attaching args to a hot span is cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArgList {
    entries: [Option<(&'static str, u64)>; Self::CAPACITY],
}

impl ArgList {
    /// Maximum number of arguments a span or event can carry.
    pub const CAPACITY: usize = 3;

    /// An empty argument list.
    pub fn new() -> ArgList {
        ArgList::default()
    }

    /// Appends an argument; silently dropped once full.
    pub fn push(&mut self, key: &'static str, value: u64) {
        for slot in &mut self.entries {
            if slot.is_none() {
                *slot = Some((key, value));
                return;
            }
        }
    }

    /// Iterates the populated arguments in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.entries.iter().filter_map(|slot| *slot)
    }

    /// Whether no arguments are attached.
    pub fn is_empty(&self) -> bool {
        self.entries[0].is_none()
    }
}

/// A completed span, reported to the collector when its guard drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The span's category.
    pub cat: Category,
    /// Static phase name (e.g. `"expand"`, `"barrier_wait"`).
    pub name: &'static str,
    /// Track id the span ran on; see [`crate::track_names`].
    pub track: u32,
    /// Start, microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth on its thread at open time (0 = top level).
    pub depth: u32,
    /// Attached integer arguments.
    pub args: ArgList,
}

impl SpanRecord {
    /// End timestamp, microseconds since the trace epoch.
    pub fn end_us(&self) -> u64 {
        self.start_us.saturating_add(self.dur_us)
    }
}

/// An instant event (zero-duration marker).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// The event's category.
    pub cat: Category,
    /// Static event name (e.g. `"improved"`, `"warm_hit"`).
    pub name: &'static str,
    /// Track id the event fired on.
    pub track: u32,
    /// Timestamp, microseconds since the trace epoch.
    pub ts_us: u64,
    /// Attached integer arguments.
    pub args: ArgList,
}

/// Sink for completed spans, events, and counters. Implementations must
/// be thread-safe: spans arrive concurrently from every worker thread.
pub trait Collector: Send + Sync {
    /// The category mask this collector wants armed while installed.
    fn mask(&self) -> u32;
    /// Receives a completed span.
    fn span(&self, record: SpanRecord);
    /// Receives an instant event.
    fn event(&self, record: EventRecord);
    /// Adds `delta` to the named counter.
    fn add(&self, counter: &'static str, delta: u64);
}

/// Records nothing and arms no categories — the implicit default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCollector;

impl Collector for NullCollector {
    fn mask(&self) -> u32 {
        0
    }
    fn span(&self, _record: SpanRecord) {}
    fn event(&self, _record: EventRecord) {}
    fn add(&self, _counter: &'static str, _delta: u64) {}
}

/// Per-phase aggregate: call count and total duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseAgg {
    /// Number of completed spans of this phase.
    pub count: u64,
    /// Sum of their durations, microseconds.
    pub total_us: u64,
}

#[derive(Default)]
struct AggState {
    phases: BTreeMap<(Category, &'static str), PhaseAgg>,
    events: BTreeMap<(Category, &'static str), u64>,
    counters: BTreeMap<&'static str, u64>,
}

impl AggState {
    fn absorb_span(&mut self, record: &SpanRecord) {
        let agg = self.phases.entry((record.cat, record.name)).or_default();
        agg.count += 1;
        agg.total_us = agg.total_us.saturating_add(record.dur_us);
    }
}

/// Keeps only per-phase aggregates (counts, total durations) and
/// counters — no individual records, bounded memory.
#[derive(Default)]
pub struct CountingCollector {
    mask: u32,
    state: Mutex<AggState>,
}

impl CountingCollector {
    /// A counting collector armed for the given category mask
    /// (e.g. [`Category::ALL`]).
    pub fn new(mask: u32) -> CountingCollector {
        CountingCollector {
            mask,
            state: Mutex::default(),
        }
    }

    /// Snapshot of the per-phase aggregates, sorted by (category, name).
    pub fn phases(&self) -> Vec<(Category, &'static str, PhaseAgg)> {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state
            .phases
            .iter()
            .map(|(&(cat, name), &agg)| (cat, name, agg))
            .collect()
    }

    /// Snapshot of the named counters (explicit [`crate::count`] calls
    /// plus one `events.<name>` count per event name), sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        collect_counters(&state)
    }
}

fn collect_counters(state: &AggState) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = state
        .counters
        .iter()
        .map(|(&name, &v)| (name.to_string(), v))
        .collect();
    for (&(cat, name), &v) in &state.events {
        out.push((format!("events.{}.{}", cat.label(), name), v));
    }
    out.sort();
    out
}

impl Collector for CountingCollector {
    fn mask(&self) -> u32 {
        self.mask
    }

    fn span(&self, record: SpanRecord) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .absorb_span(&record);
    }

    fn event(&self, record: EventRecord) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *state.events.entry((record.cat, record.name)).or_default() += 1;
    }

    fn add(&self, counter: &'static str, delta: u64) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *state.counters.entry(counter).or_default() += delta;
    }
}

#[derive(Default)]
struct RecordingState {
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    agg: AggState,
}

/// Captures every span and event for Chrome-trace export and the
/// aggregate [`PhaseReport`].
///
/// [`Category::KernelOp`] spans (`ite`/quantify/ISOP — easily millions
/// per solve) are by default folded into the aggregates only, keeping
/// `trace.json` bounded; construct with [`RecordingCollector::detailed`]
/// to keep their individual records too.
#[derive(Default)]
pub struct RecordingCollector {
    mask: u32,
    kernel_op_detail: bool,
    state: Mutex<RecordingState>,
}

impl RecordingCollector {
    /// A recording collector armed for every category, kernel ops
    /// aggregated.
    pub fn new() -> RecordingCollector {
        RecordingCollector::with_mask(Category::ALL)
    }

    /// A recording collector armed for `mask`, kernel ops aggregated.
    pub fn with_mask(mask: u32) -> RecordingCollector {
        RecordingCollector {
            mask,
            kernel_op_detail: false,
            state: Mutex::default(),
        }
    }

    /// Like [`RecordingCollector::new`] but keeps an individual record
    /// for every kernel op span. Traces get large quickly.
    pub fn detailed() -> RecordingCollector {
        RecordingCollector {
            mask: Category::ALL,
            kernel_op_detail: true,
            state: Mutex::default(),
        }
    }

    /// Clones the recorded spans.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .spans
            .clone()
    }

    /// Clones the recorded instant events.
    pub fn events(&self) -> Vec<EventRecord> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .events
            .clone()
    }

    /// Snapshot of the named counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        collect_counters(&state.agg)
    }

    /// Renders everything recorded so far as Chrome trace-event JSON
    /// (load in Perfetto or `chrome://tracing`).
    pub fn chrome_trace(&self) -> String {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        crate::chrome::chrome_trace(&state.spans, &state.events, &crate::track_names())
    }

    /// Builds the aggregate per-phase report (total/self time, counts)
    /// from everything recorded so far.
    pub fn phase_report(&self) -> PhaseReport {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let phases = state
            .agg
            .phases
            .iter()
            .map(|(&(cat, name), &agg)| (cat, name, agg))
            .collect::<Vec<_>>();
        PhaseReport::build(
            &state.spans,
            &phases,
            collect_counters(&state.agg),
            &crate::track_names(),
        )
    }

    /// Discards all recorded data, keeping the collector installed.
    pub fn clear(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *state = RecordingState::default();
    }
}

impl Collector for RecordingCollector {
    fn mask(&self) -> u32 {
        self.mask
    }

    fn span(&self, record: SpanRecord) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.agg.absorb_span(&record);
        if record.cat != Category::KernelOp || self.kernel_op_detail {
            state.spans.push(record);
        }
    }

    fn event(&self, record: EventRecord) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *state
            .agg
            .events
            .entry((record.cat, record.name))
            .or_default() += 1;
        state.events.push(record);
    }

    fn add(&self, counter: &'static str, delta: u64) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *state.agg.counters.entry(counter).or_default() += delta;
    }
}
