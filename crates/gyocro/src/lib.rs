//! # brel-gyocro
//!
//! Baseline heuristic Boolean-relation minimizers in the
//! reduce–expand–irredundant tradition, reimplementing the approach of
//! gyocro (Watanabe & Brayton, "Heuristic Minimization of Multiple-Valued
//! Relations") and of Herb (Ghosh, Devadas, Newton) that the BREL paper
//! compares against in Section 9.
//!
//! The solver starts from the quick, output-ordered solution (Fig. 4 of the
//! BREL paper) and then repeatedly improves one output at a time: it
//! computes the flexibility that the relation still grants to that output
//! once all the other outputs are fixed, and runs an ESPRESSO-style
//! reduce–expand–irredundant pass on the output's two-level cover inside
//! that interval. The loop stops when a full pass over the outputs no
//! longer improves the `(cubes, literals)` cost.
//!
//! This is exactly the kind of local search whose weakness Section 9.1 of
//! the paper illustrates (Fig. 10): because every move keeps all but one
//! output fixed and only grows/shrinks existing cubes, the solver cannot
//! escape some local minima that BREL's divide-and-conquer exploration does
//! escape. The integration tests of the workspace reproduce that example.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod solver;

pub use solver::{ExpandMode, GyocroConfig, GyocroSolution, GyocroSolver};
