//! The reduce–expand–irredundant relation minimizer.

use brel_bdd::Var;
use brel_core::QuickSolver;
use brel_relation::{BooleanRelation, MultiOutputFunction, RelationError};
use brel_sop::minimize::{expand, irredundant, reduce, Interval};
use brel_sop::{Cover, MultiCover};

/// How aggressively cubes are expanded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpandMode {
    /// Expand any number of literals per cube per pass (gyocro's behaviour).
    #[default]
    MultiLiteral,
    /// Expand at most one literal per cube per pass (Herb's test-pattern
    /// style expansion, which the paper notes restricts the search space).
    SingleLiteral,
}

/// Configuration of the baseline solver.
#[derive(Debug, Clone)]
pub struct GyocroConfig {
    /// Maximum number of full passes over the outputs.
    pub max_passes: usize,
    /// Maximum reduce–expand–irredundant iterations per output per pass.
    pub max_inner_iterations: usize,
    /// Expansion aggressiveness.
    pub expand_mode: ExpandMode,
}

impl Default for GyocroConfig {
    fn default() -> Self {
        GyocroConfig {
            max_passes: 10,
            max_inner_iterations: 5,
            expand_mode: ExpandMode::MultiLiteral,
        }
    }
}

impl GyocroConfig {
    /// A Herb-like configuration (single-literal expansion).
    pub fn herb() -> Self {
        GyocroConfig {
            expand_mode: ExpandMode::SingleLiteral,
            ..GyocroConfig::default()
        }
    }
}

/// The result of a baseline run.
#[derive(Debug, Clone)]
pub struct GyocroSolution {
    /// The final multiple-output function.
    pub function: MultiOutputFunction,
    /// Its two-level covers.
    pub cover: MultiCover,
    /// Number of full passes executed.
    pub passes: usize,
    /// `(cubes, literals)` cost of the initial quick solution.
    pub initial_cost: (usize, usize),
    /// `(cubes, literals)` cost of the final solution.
    pub final_cost: (usize, usize),
}

/// The gyocro-style reduce–expand–irredundant Boolean-relation minimizer.
#[derive(Debug, Clone, Default)]
pub struct GyocroSolver {
    config: GyocroConfig,
}

impl GyocroSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: GyocroConfig) -> Self {
        GyocroSolver { config }
    }

    /// The configuration of this solver.
    pub fn config(&self) -> &GyocroConfig {
        &self.config
    }

    /// Solves the relation.
    ///
    /// # Errors
    ///
    /// Returns [`RelationError::NotWellDefined`] if the relation is not well
    /// defined.
    pub fn solve(&self, relation: &BooleanRelation) -> Result<GyocroSolution, RelationError> {
        let space = relation.space().clone();
        let input_vars: Vec<Var> = space.input_vars().to_vec();
        let mgr = space.mgr().clone();

        // Initial solution: the quick solver (the same seeding gyocro uses).
        let initial = QuickSolver::new().solve(relation)?;
        let mut functions: Vec<_> = initial.outputs().to_vec();
        let mut covers: Vec<Cover> = initial.to_multicover().outputs().to_vec();
        let initial_cost = cost_of(&covers);

        let mut best_cost = initial_cost;
        let mut passes = 0usize;
        for _ in 0..self.config.max_passes {
            passes += 1;
            let mut improved = false;
            for i in 0..space.num_outputs() {
                // Flexibility of output i with every other output fixed.
                let mut constrained = relation.clone();
                for (j, f) in functions.iter().enumerate() {
                    if j != i {
                        constrained = constrained.constrain_output(j, f);
                    }
                }
                let isf = constrained.projection(i);
                let interval = Interval::new(isf.on().clone(), isf.dc());
                let mut cover = covers[i].clone();
                match self.config.expand_mode {
                    ExpandMode::MultiLiteral => {
                        for _ in 0..self.config.max_inner_iterations {
                            let before = (cover.num_cubes(), cover.num_literals());
                            reduce(&mut cover, &interval, &mgr, &input_vars);
                            expand(&mut cover, &interval, &mgr, &input_vars);
                            irredundant(&mut cover, &interval, &mgr, &input_vars);
                            let after = (cover.num_cubes(), cover.num_literals());
                            if after >= before {
                                break;
                            }
                        }
                    }
                    ExpandMode::SingleLiteral => {
                        // Herb-style: a single reduce/expand/irredundant pass
                        // per output per outer pass.
                        reduce(&mut cover, &interval, &mgr, &input_vars);
                        expand(&mut cover, &interval, &mgr, &input_vars);
                        irredundant(&mut cover, &interval, &mgr, &input_vars);
                    }
                }
                // Keep the new cover only if it is still a valid
                // implementation and does not worsen this output.
                if interval.admits(&cover, &mgr, &input_vars) {
                    let old = (covers[i].num_cubes(), covers[i].num_literals());
                    let new = (cover.num_cubes(), cover.num_literals());
                    if new < old {
                        covers[i] = cover;
                        functions[i] = covers[i].to_bdd_with_vars(&mgr, &input_vars);
                        improved = true;
                    }
                }
            }
            let current = cost_of(&covers);
            if !improved || current >= best_cost {
                break;
            }
            best_cost = current;
        }

        let function = MultiOutputFunction::new(&space, functions)?;
        debug_assert!(relation.is_compatible(&function));
        let cover =
            MultiCover::from_outputs(covers).expect("covers share the relation's input width");
        let final_cost = cost_of(cover.outputs());
        Ok(GyocroSolution {
            function,
            cover,
            passes,
            initial_cost,
            final_cost,
        })
    }
}

fn cost_of(covers: &[Cover]) -> (usize, usize) {
    (
        covers.iter().map(Cover::num_cubes).sum(),
        covers.iter().map(Cover::num_literals).sum(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use brel_core::{BrelConfig, BrelSolver, CostFn, CostFunction};
    use brel_relation::RelationSpace;

    fn fig1(space: &RelationSpace) -> BooleanRelation {
        BooleanRelation::from_table(space, "00:{00}\n01:{00}\n10:{00,11}\n11:{10,11}").unwrap()
    }

    /// The local-minimum relation of Fig. 10 / Section 9.1.
    fn fig10(space: &RelationSpace) -> BooleanRelation {
        BooleanRelation::from_table(space, "00:{00,11}\n01:{10}\n10:{01,10}\n11:{11}").unwrap()
    }

    #[test]
    fn solution_is_compatible_with_the_relation() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let sol = GyocroSolver::default().solve(&r).unwrap();
        assert!(r.is_compatible(&sol.function));
        assert!(sol.final_cost <= sol.initial_cost);
        assert!(sol.passes >= 1);
    }

    #[test]
    fn rejects_ill_defined_relations() {
        let space = RelationSpace::new(1, 1);
        let r = BooleanRelation::from_table(&space, "1 : {1}").unwrap();
        assert!(GyocroSolver::default().solve(&r).is_err());
    }

    #[test]
    fn herb_mode_also_returns_a_valid_solution() {
        let space = RelationSpace::new(2, 2);
        let r = fig1(&space);
        let sol = GyocroSolver::new(GyocroConfig::herb()).solve(&r).unwrap();
        assert!(r.is_compatible(&sol.function));
    }

    #[test]
    fn gets_trapped_in_the_fig10_local_minimum_where_brel_escapes() {
        // Section 9.1: starting from the quick solution (x ⇔ 1)(y ⇔ a xnor b)
        // the reduce–expand–irredundant loop cannot reach the optimum
        // (x ⇔ b)(y ⇔ a). BREL does.
        let space = RelationSpace::with_names(&["a", "b"], &["x", "y"]);
        let r = fig10(&space);
        let gyocro = GyocroSolver::default().solve(&r).unwrap();
        let brel = BrelSolver::new(BrelConfig::exact()).solve(&r).unwrap();
        assert!(r.is_compatible(&gyocro.function));
        assert!(r.is_compatible(&brel.function));
        let gyocro_cost = CostFn::SumBddSize.cost(&gyocro.function);
        assert!(
            brel.cost < gyocro_cost,
            "BREL ({}) must beat gyocro ({}) on the Fig. 10 relation",
            brel.cost,
            gyocro_cost
        );
        // gyocro's literal count also stays above BREL's.
        assert!(gyocro.final_cost.1 > brel.function.num_literals());
    }

    #[test]
    fn functional_relation_is_left_alone() {
        let space = RelationSpace::new(2, 1);
        let a = space.input(0);
        let b = space.input(1);
        let f = MultiOutputFunction::new(&space, vec![a.and(&b)]).unwrap();
        let r = BooleanRelation::from_function(&f);
        let sol = GyocroSolver::default().solve(&r).unwrap();
        assert_eq!(sol.function.output(0), f.output(0));
        assert_eq!(sol.final_cost, (1, 2));
    }
}
