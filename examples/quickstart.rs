//! Quickstart: solve the Boolean relation of Fig. 1 of the paper.
//!
//! The relation relates input vertex `10` to the output set `{00, 11}`,
//! which cannot be expressed with per-output don't cares. The example walks
//! through the recursive paradigm: the MISF over-approximation, the conflict
//! it produces, and the solution BREL finds after splitting.
//!
//! Run with `cargo run --example quickstart`.

use brel_core::{BrelConfig, BrelSolver, CostFn, CostFunction, QuickSolver};
use brel_relation::{BooleanRelation, RelationSpace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The relation of Fig. 1a, written in the paper's tabular notation.
    let space = RelationSpace::with_names(&["x1", "x2"], &["y1", "y2"]);
    let relation =
        BooleanRelation::from_table(&space, "00 : {00}\n01 : {00}\n10 : {00, 11}\n11 : {10, 11}")?;

    println!("Boolean relation R:");
    print!("{relation}");
    println!("well defined: {}", relation.is_well_defined());
    println!("functional:   {}", relation.is_function());

    // Step (a): the MISF over-approximation loses the correlation at vertex 10.
    let misf_rel = relation.to_misf().to_relation();
    println!("\nMISF over-approximation (Definition 5.2):");
    print!("{misf_rel}");

    // A fast compatible solution: the quick solver of Fig. 4.
    let quick = QuickSolver::new().solve(&relation)?;
    println!(
        "\nQuickSolver solution: cost(sum of BDD sizes) = {}",
        CostFn::SumBddSize.cost(&quick)
    );

    // The recursive branch-and-bound solver of Fig. 6, with a trace.
    let config = BrelConfig::exact().with_trace(true);
    let solution = BrelSolver::new(config).solve(&relation)?;
    println!(
        "\nBREL solution: cost = {}, explored {} subrelations, {} splits",
        solution.cost, solution.stats.explored, solution.stats.splits
    );
    for (i, output) in solution.function.outputs().iter().enumerate() {
        let cover = brel_sop::Cover::from_isop(&output.isop(), space.input_vars());
        println!(
            "  {} = {}",
            space.output_name(i),
            if cover.is_empty() {
                "0".to_string()
            } else {
                cover
                    .cubes()
                    .iter()
                    .map(|c| c.to_text())
                    .collect::<Vec<_>>()
                    .join(" + ")
            }
        );
    }
    assert!(relation.is_compatible(&solution.function));
    println!("\nexploration trace:");
    for event in &solution.trace {
        println!("  {event:?}");
    }
    Ok(())
}
