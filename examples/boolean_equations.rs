//! Section 8: solving a system of Boolean equations through a Boolean
//! relation (Examples 8.1–8.3 of the paper).
//!
//! The system over independent variables {a, b} and dependent {x, y, z}:
//!
//! ```text
//!   x + b·ȳ·z̄ + b·z = a
//!   x·y + x·z + y·z = 0
//! ```
//!
//! Run with `cargo run --example boolean_equations`.

use brel_core::{BooleanSystem, BrelConfig, Equation};
use brel_relation::RelationSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let space = RelationSpace::with_names(&["a", "b"], &["x", "y", "z"]);
    let a = space.input(0);
    let b = space.input(1);
    let x = space.output(0);
    let y = space.output(1);
    let z = space.output(2);

    let mut system = BooleanSystem::new(&space);
    // x + b·ȳ·z̄ + b·z = a
    system.push(Equation::equal(
        x.or(&b.and(&y.complement()).and(&z.complement()))
            .or(&b.and(&z)),
        a.clone(),
    ));
    // x·y + x·z + y·z = 0
    system.push(Equation::equal(
        x.and(&y).or(&x.and(&z)).or(&y.and(&z)),
        space.mgr().zero(),
    ));

    println!("consistent: {}", system.is_consistent());
    println!("\nThe system as a Boolean relation (Theorem 8.1):");
    print!("{}", system.to_relation());

    let solution = system.solve(BrelConfig::exact())?;
    println!(
        "\nparticular solution found by BREL (cost {}):",
        solution.cost
    );
    for (i, f) in solution.function.outputs().iter().enumerate() {
        let cover = brel_sop::Cover::from_isop(&f.isop(), space.input_vars());
        let text = if cover.is_empty() {
            "0".to_string()
        } else if cover.cubes().iter().any(|c| c.num_literals() == 0) {
            "1".to_string()
        } else {
            cover
                .cubes()
                .iter()
                .map(|c| c.to_text())
                .collect::<Vec<_>>()
                .join(" + ")
        };
        println!(
            "  {}(a, b) = {}   (cubes over a b)",
            space.output_name(i),
            text
        );
    }
    assert!(system.is_solution(&solution.function));

    // An inconsistent system is reported as such.
    let mut bad = BooleanSystem::new(&space);
    bad.push(Equation::equal(x.clone(), a.clone()));
    bad.push(Equation::equal(x.clone(), a.complement()));
    println!("\ncontradictory system consistent? {}", bad.is_consistent());
    Ok(())
}
