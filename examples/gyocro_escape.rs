//! Section 9.1 / Fig. 10: the local minimum that traps the
//! reduce–expand–irredundant paradigm (gyocro) and that BREL escapes.
//!
//! Run with `cargo run --example gyocro_escape`.

use brel_benchdata::figures;
use brel_core::{BrelConfig, BrelSolver, CostFn, CostFunction};
use brel_gyocro::GyocroSolver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (space, relation) = figures::fig10();
    println!("Relation of Fig. 10 (inputs a b, outputs x y):");
    print!("{relation}");

    let gyocro = GyocroSolver::default().solve(&relation)?;
    println!(
        "\ngyocro:  {} cubes, {} literals, sum-of-BDD-sizes = {}",
        gyocro.final_cost.0,
        gyocro.final_cost.1,
        CostFn::SumBddSize.cost(&gyocro.function)
    );

    let brel = BrelSolver::new(BrelConfig::exact()).solve(&relation)?;
    println!(
        "BREL:    sum-of-BDD-sizes = {} ({} subrelations explored, {} splits)",
        brel.cost, brel.stats.explored, brel.stats.splits
    );
    for (i, output) in brel.function.outputs().iter().enumerate() {
        let support: Vec<String> = output
            .support()
            .iter()
            .map(|v| space.mgr().var_name(*v))
            .collect();
        println!(
            "  {} depends only on {{{}}}",
            space.output_name(i),
            support.join(", ")
        );
    }

    assert!(
        brel.cost < CostFn::SumBddSize.cost(&gyocro.function),
        "BREL must escape the local minimum (Section 9.1)"
    );
    println!("\nBREL escaped the local minimum that traps the local search.");
    Ok(())
}
