//! Solve one instance of the Table 2 benchmark family with both solvers and
//! compare the metrics the paper reports (cubes, literals, runtime).
//!
//! Run with `cargo run --example table2_instance -- [instance-name]`
//! (default `int1`; see `brel_benchdata::table2::instances()` for names).

use std::time::Instant;

use brel_benchdata::table2;
use brel_core::{BrelConfig, BrelSolver};
use brel_gyocro::GyocroSolver;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "int1".to_string());
    let instance = table2::instance(&name).ok_or_else(|| {
        let known: Vec<&str> = table2::instances().iter().map(|i| i.name).collect();
        format!(
            "unknown instance `{name}`; try one of: {}",
            known.join(", ")
        )
    })?;
    let (_space, relation) = table2::generate(&instance);
    println!(
        "instance {}: {} inputs, {} outputs, {} pairs",
        instance.name,
        instance.num_inputs,
        instance.num_outputs,
        relation.num_pairs()
    );

    let start = Instant::now();
    let gyocro = GyocroSolver::default().solve(&relation)?;
    let gyocro_time = start.elapsed();
    let gyocro_cover = gyocro.function.to_multicover();
    println!(
        "gyocro: {:3} cubes  {:3} literals   {:?}",
        gyocro_cover.num_cubes(),
        gyocro_cover.num_literals(),
        gyocro_time
    );

    let start = Instant::now();
    let brel = BrelSolver::new(BrelConfig::table2()).solve(&relation)?;
    let brel_time = start.elapsed();
    let brel_cover = brel.function.to_multicover();
    println!(
        "BREL:   {:3} cubes  {:3} literals   {:?}   (explored {} subrelations)",
        brel_cover.num_cubes(),
        brel_cover.num_literals(),
        brel_time,
        brel.stats.explored
    );

    assert!(relation.is_compatible(&gyocro.function));
    assert!(relation.is_compatible(&brel.function));
    Ok(())
}
