//! Section 10: multiway logic decomposition with Boolean relations.
//!
//! First the paper's Fig. 11 example — decomposing
//! `f(x1, x2, x3) = x1·(x2 + x3) + x̄1·x̄2·x̄3` with a 2:1 multiplexer — and
//! then the full Table 3 flow on a small synthetic sequential circuit:
//! every flip-flop's next-state function is re-expressed through the
//! relation `F(X) ⇔ (A·C̄ + B·C)` and the three mux inputs are synthesized
//! by BREL with an area- or delay-oriented cost.
//!
//! Run with `cargo run --example decompose_mux`.

use brel_benchdata::iscas_like;
use brel_core::BrelConfig;
use brel_network::decompose::{
    decompose_function, decompose_mux_latches, mux_gate, verify_decomposition,
};
use brel_network::mapper::{map, MappingOptions};
use brel_network::speedup::collapse;
use brel_network::Library;
use brel_relation::RelationSpace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Fig. 11: decompose one function with a mux ----------------------
    let space = RelationSpace::with_names(&["x1", "x2", "x3"], &["A", "B", "C"]);
    let x1 = space.input(0);
    let x2 = space.input(1);
    let x3 = space.input(2);
    let f = x1
        .and(&x2.or(&x3))
        .or(&x1.complement().and(&x2.complement()).and(&x3.complement()));

    let decomposition = decompose_function(&space, &f, mux_gate, BrelConfig::decomposition(false))?;
    println!("Fig. 11: f = x1(x2+x3) + x1'x2'x3' decomposed as mux(A, B, C):");
    for (i, g) in decomposition.functions.outputs().iter().enumerate() {
        println!(
            "  {} : BDD size {}, support {:?}",
            space.output_name(i),
            g.size(),
            g.support()
                .iter()
                .map(|v| space.mgr().var_name(*v))
                .collect::<Vec<_>>()
        );
    }
    assert!(verify_decomposition(&space, &f, &decomposition));
    println!("  recomposition check passed: mux(A, B, C) == f\n");

    // ---- Table 3 flow on a small sequential circuit -----------------------
    let instance = iscas_like::instance("s27").expect("known instance");
    let network = iscas_like::generate(&instance);
    let library = Library::lib2_like();
    let options = MappingOptions::default();

    // Baseline: collapsed original network, mapped.
    let baseline = map(&collapse(&network)?, &library, &options)?;
    println!(
        "{}: baseline        area {:7.1}  delay {:5.2}",
        instance.name, baseline.area, baseline.delay
    );

    for (label, delay_oriented) in [("area-oriented ", false), ("delay-oriented", true)] {
        let decomposed = decompose_mux_latches(&network, delay_oriented, 50)?;
        let mapped = map(&decomposed.network, &library, &options)?;
        println!(
            "{}: mux-latch {}  area {:7.1}  delay {:5.2}   (mux assumed inside the flip-flop)",
            instance.name, label, mapped.area, mapped.delay
        );
        for latch in &decomposed.latches {
            println!(
                "    ff{}: |F| = {:2} nodes  ->  |A|,|B|,|C| = {:?}",
                latch.latch_index, latch.original_size, latch.decomposed_sizes
            );
        }
    }
    Ok(())
}
